//! Measured tuning of the blocking parameters and wisdom persistence
//! (paper §4.3.4, rebuilt as Autotuner 2.0's layers 2 and 3).
//!
//! The paper tunes by exhaustively measuring every candidate per exact
//! GEMM shape. Here measurement only *ranks*: [`tune_blocking`] times the
//! analytic cost model's top-K candidates ([`crate::GemmCostModel`],
//! `K =` [`TUNE_TOP_K`]) and keeps the fastest; [`tune_blocking_full`]
//! retains the exhaustive sweep for ablations and for the release-mode
//! guard test that the top-K set still contains the measured winner.
//!
//! Results persist in a [`Wisdom`] file keyed by **SIMD tier** and shape.
//! Two granularities coexist: *exact* entries win when the precise shape
//! was tuned, and *class* entries generalise each tuning to every shape in
//! the same geometric bucket (per-dimension `⌈log₂⌉`, see [`ShapeClass`]),
//! so an unseen-but-similar shape resolves instantly. The lookup ladder
//! ([`Wisdom::blocking_for`]) is exact hit → class hit → cost-model
//! argmin — never a measurement stall on the execute path.
//!
//! # Wisdom file format
//!
//! Line-oriented text, no external dependencies. The v2 format is:
//!
//! ```text
//! # lowino wisdom v2
//! <tier> exact <t> <n> <c> <k> -> <n_blk> <c_blk> <k_blk> <row_blk> <col_blk>
//! <tier> class <tb> <nb> <cb> <kb> -> <n_blk> <c_blk> <k_blk> <row_blk> <col_blk>
//! ```
//!
//! where `<tier>` is a [`SimdTier::from_name`] spelling (`scalar`, `avx2`,
//! `avx512-vnni`), `exact` keys are the literal `t n c k` dimensions and
//! `class` keys are the per-dimension bucket exponents
//! (`bucket(x) = ⌈log₂ x⌉`). Legacy v1 lines — a bare `t n c k` key with
//! no tier token — still parse and are kept as tierless exact entries
//! that any tier may fall back to (they were measured on an unknown
//! tier, so they rank below tier-qualified entries). Blank lines and
//! `#` comments are ignored; anything else is rejected with its line
//! number.

use std::collections::HashMap;
use std::io::Write as _;
use std::path::Path;
use std::time::{Duration, Instant};

use lowino_parallel::StaticPool;
use lowino_simd::SimdTier;

use crate::cost::{candidate_lattice, GemmCostModel};
use crate::driver::{batched_gemm_u8i8, GemmShape};
use crate::kernel::Blocking;
use crate::panels::{UPanel, VPanel, ZPanel};

/// How many cost-model candidates [`tune_blocking`] measures.
pub const TUNE_TOP_K: usize = 5;

/// One measured tuning candidate.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// The blocking that was measured.
    pub blocking: Blocking,
    /// Best-of-repeats wall time.
    pub time: Duration,
}

/// Where a seeded blocking came from (the payload of the `tune/seeded`
/// trace instant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeedSource {
    /// Exact-shape wisdom hit (tier-qualified or legacy v1).
    Exact,
    /// Shape-class wisdom hit.
    Class,
    /// Cost-model argmin (no wisdom for the shape or its class).
    Model,
    /// Static [`Blocking::default_for`] (tuning policy is `Off`).
    Default,
}

impl SeedSource {
    /// Stable numeric code for trace payloads.
    pub fn as_u64(self) -> u64 {
        match self {
            SeedSource::Exact => 0,
            SeedSource::Class => 1,
            SeedSource::Model => 2,
            SeedSource::Default => 3,
        }
    }
}

/// Measure `candidates` on synthetic operands of `shape` and return the
/// fastest (plus the full log). Every timed candidate is emitted as a
/// `tune/measurement` trace instant (payload: best-of-repeats ns) — the
/// zero-stall acceptance test greps for exactly this event to prove no
/// measurement ever runs on the execute path.
///
/// # Panics
///
/// Panics if `candidates` is empty.
pub fn measure_candidates(
    tier: SimdTier,
    shape: &GemmShape,
    candidates: &[Blocking],
    pool: &mut StaticPool,
    repeats: usize,
) -> (Blocking, Vec<Measurement>) {
    let mut v = VPanel::new(shape.t, shape.n, shape.c);
    // Deterministic non-trivial fill (content doesn't affect timing).
    for t in 0..shape.t {
        for n in 0..shape.n {
            for (c, x) in v.row_mut(t, n).iter_mut().enumerate() {
                *x = ((t * 31 + n * 7 + c) % 251) as u8;
            }
        }
    }
    let mut u = UPanel::new(shape.t, shape.c, shape.k);
    u.finalize_compensation();
    let mut z = ZPanel::new(shape.t, shape.n, shape.k);

    let mut log = Vec::with_capacity(candidates.len());
    let mut best: Option<(Duration, Blocking)> = None;
    for &b in candidates {
        // Warm-up once, then best-of-`repeats`.
        batched_gemm_u8i8(tier, shape, &b, &v, &u, &mut z, pool);
        let mut t_best = Duration::MAX;
        for _ in 0..repeats.max(1) {
            let start = Instant::now();
            batched_gemm_u8i8(tier, shape, &b, &v, &u, &mut z, pool);
            t_best = t_best.min(start.elapsed());
        }
        if best.as_ref().is_none_or(|(t, _)| t_best < *t) {
            best = Some((t_best, b));
        }
        lowino_trace::instant("tune/measurement", t_best.as_nanos() as u64);
        log.push(Measurement {
            blocking: b,
            time: t_best,
        });
    }
    (best.expect("non-empty candidate set").1, log)
}

/// Tune the blocking for a GEMM shape: the cost model ranks the full
/// candidate lattice and only its top-[`TUNE_TOP_K`] candidates are
/// measured. Returns the winner and the measurement log.
pub fn tune_blocking(
    tier: SimdTier,
    shape: &GemmShape,
    pool: &mut StaticPool,
    repeats: usize,
) -> (Blocking, Vec<Measurement>) {
    let model = GemmCostModel::new();
    let candidates = model.top_k(tier, shape, TUNE_TOP_K);
    measure_candidates(tier, shape, &candidates, pool, repeats)
}

/// Exhaustively measure the *entire* candidate lattice (the paper's
/// original sweep). Kept for the ablation bench and the guard test that
/// [`tune_blocking`]'s pruning never loses the winner.
pub fn tune_blocking_full(
    tier: SimdTier,
    shape: &GemmShape,
    pool: &mut StaticPool,
    repeats: usize,
) -> (Blocking, Vec<Measurement>) {
    let candidates = candidate_lattice(shape);
    measure_candidates(tier, shape, &candidates, pool, repeats)
}

/// Geometric shape bucket: each dimension maps to its `⌈log₂⌉` exponent,
/// so shapes within a power-of-two band share a class and one tuning
/// generalises across them (e.g. every `n ∈ 1025..=2048` buckets to 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShapeClass {
    /// `⌈log₂ t⌉`.
    pub t: u8,
    /// `⌈log₂ n⌉`.
    pub n: u8,
    /// `⌈log₂ c⌉`.
    pub c: u8,
    /// `⌈log₂ k⌉`.
    pub k: u8,
}

impl ShapeClass {
    /// The class of a shape.
    pub fn of(shape: &GemmShape) -> Self {
        fn bucket(x: usize) -> u8 {
            x.max(1).next_power_of_two().trailing_zeros() as u8
        }
        Self {
            t: bucket(shape.t),
            n: bucket(shape.n),
            c: bucket(shape.c),
            k: bucket(shape.k),
        }
    }
}

type ExactKey = (SimdTier, [usize; 4]);

fn exact_key(tier: SimdTier, shape: &GemmShape) -> ExactKey {
    (tier, [shape.t, shape.n, shape.c, shape.k])
}

/// Persistent tuning results (§4.3.4's wisdom file, v2: tier-qualified
/// exact and shape-class entries plus tierless v1 fallbacks). See the
/// module docs for the on-disk format.
#[derive(Debug, Clone, Default)]
pub struct Wisdom {
    exact: HashMap<ExactKey, Blocking>,
    class: HashMap<(SimdTier, ShapeClass), Blocking>,
    legacy: HashMap<[usize; 4], Blocking>,
}

impl Wisdom {
    /// Empty wisdom.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of remembered exact shapes (tier-qualified + legacy v1).
    pub fn len(&self) -> usize {
        self.exact.len() + self.legacy.len()
    }

    /// Number of remembered shape classes.
    pub fn class_len(&self) -> usize {
        self.class.len()
    }

    /// Whether nothing is remembered.
    pub fn is_empty(&self) -> bool {
        self.exact.is_empty() && self.class.is_empty() && self.legacy.is_empty()
    }

    /// Exact-shape lookup: a tier-qualified entry, else a legacy v1 entry
    /// (tierless, so any tier may use it as a last exact resort).
    pub fn get(&self, tier: SimdTier, shape: &GemmShape) -> Option<Blocking> {
        self.exact
            .get(&exact_key(tier, shape))
            .or_else(|| self.legacy.get(&[shape.t, shape.n, shape.c, shape.k]))
            .copied()
    }

    /// Shape-class lookup for the shape's bucket.
    pub fn get_class(&self, tier: SimdTier, shape: &GemmShape) -> Option<Blocking> {
        self.class.get(&(tier, ShapeClass::of(shape))).copied()
    }

    /// Remember a tuned blocking: as the shape's exact entry *and* as its
    /// class's entry (latest tuning wins the class).
    pub fn insert(&mut self, tier: SimdTier, shape: &GemmShape, blocking: Blocking) {
        self.exact.insert(exact_key(tier, shape), blocking);
        self.class.insert((tier, ShapeClass::of(shape)), blocking);
    }

    /// The zero-stall resolution ladder: exact hit → class hit →
    /// cost-model argmin. Never measures, never returns a default guess
    /// when the model can do better.
    pub fn blocking_for(&self, tier: SimdTier, shape: &GemmShape) -> (Blocking, SeedSource) {
        if let Some(b) = self.get(tier, shape) {
            return (b, SeedSource::Exact);
        }
        if let Some(b) = self.get_class(tier, shape) {
            return (b, SeedSource::Class);
        }
        (GemmCostModel::new().seed(tier, shape), SeedSource::Model)
    }

    /// Pre-v2 behaviour: exact hit or the static default (used when the
    /// tuning policy is `Off`).
    pub fn blocking_or_default(&self, tier: SimdTier, shape: &GemmShape) -> Blocking {
        self.get(tier, shape)
            .unwrap_or_else(|| Blocking::default_for(shape))
    }

    /// Union `other` into `self`; on a conflicting key `other`'s entry
    /// wins (it is the newer measurement on the save path).
    pub fn merge(&mut self, other: &Wisdom) {
        for (k, v) in &other.exact {
            self.exact.insert(*k, *v);
        }
        for (k, v) in &other.class {
            self.class.insert(*k, *v);
        }
        for (k, v) in &other.legacy {
            self.legacy.insert(*k, *v);
        }
    }

    /// Serialise to the v2 line format (legacy entries keep their v1
    /// spelling, so a loaded v1 file round-trips).
    pub fn to_string_format(&self) -> String {
        let fmt_b = |b: &Blocking| {
            format!(
                "{} {} {} {} {}",
                b.n_blk, b.c_blk, b.k_blk, b.row_blk, b.col_blk
            )
        };
        let mut lines: Vec<String> = Vec::with_capacity(self.len() + self.class.len());
        for ((tier, d), b) in &self.exact {
            lines.push(format!(
                "{} exact {} {} {} {} -> {}",
                tier.name(),
                d[0],
                d[1],
                d[2],
                d[3],
                fmt_b(b)
            ));
        }
        for ((tier, cls), b) in &self.class {
            lines.push(format!(
                "{} class {} {} {} {} -> {}",
                tier.name(),
                cls.t,
                cls.n,
                cls.c,
                cls.k,
                fmt_b(b)
            ));
        }
        for (d, b) in &self.legacy {
            lines.push(format!("{} {} {} {} -> {}", d[0], d[1], d[2], d[3], fmt_b(b)));
        }
        lines.sort();
        format!("# lowino wisdom v2\n{}\n", lines.join("\n"))
    }

    /// Parse the line format (v2 and v1); malformed lines are rejected
    /// with their line number.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut w = Wisdom::new();
        for (lineno, line) in text.lines().enumerate() {
            let lineno = lineno + 1;
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, val) = line
                .split_once("->")
                .ok_or_else(|| format!("line {lineno}: missing '->'"))?;
            let parse_nums = |s: &str, want: usize| -> Result<Vec<usize>, String> {
                let nums: Result<Vec<usize>, _> =
                    s.split_whitespace().map(str::parse::<usize>).collect();
                let nums = nums.map_err(|e| format!("line {lineno}: {e}"))?;
                if nums.len() != want {
                    return Err(format!(
                        "line {lineno}: expected {want} numbers, got {}",
                        nums.len()
                    ));
                }
                Ok(nums)
            };
            let v = parse_nums(val, 5)?;
            let blocking = Blocking {
                n_blk: v[0],
                c_blk: v[1],
                k_blk: v[2],
                row_blk: v[3],
                col_blk: v[4],
            };
            let mut key_toks = key.split_whitespace();
            let first = key_toks
                .next()
                .ok_or_else(|| format!("line {lineno}: empty key"))?;
            if first.parse::<usize>().is_ok() {
                // v1: bare `t n c k` key, no tier.
                let d = parse_nums(key, 4)?;
                w.legacy.insert([d[0], d[1], d[2], d[3]], blocking);
                continue;
            }
            let tier = SimdTier::from_name(first)
                .ok_or_else(|| format!("line {lineno}: unknown tier '{first}'"))?;
            let kind = key_toks
                .next()
                .ok_or_else(|| format!("line {lineno}: missing 'exact'/'class' tag"))?;
            let rest = key_toks.collect::<Vec<_>>().join(" ");
            let d = parse_nums(&rest, 4)?;
            match kind {
                "exact" => {
                    w.exact.insert((tier, [d[0], d[1], d[2], d[3]]), blocking);
                }
                "class" => {
                    let to_u8 = |x: usize| -> Result<u8, String> {
                        u8::try_from(x)
                            .map_err(|_| format!("line {lineno}: class exponent {x} out of range"))
                    };
                    let cls = ShapeClass {
                        t: to_u8(d[0])?,
                        n: to_u8(d[1])?,
                        c: to_u8(d[2])?,
                        k: to_u8(d[3])?,
                    };
                    w.class.insert((tier, cls), blocking);
                }
                other => {
                    return Err(format!(
                        "line {lineno}: expected 'exact' or 'class', got '{other}'"
                    ))
                }
            }
        }
        Ok(w)
    }

    /// Load from a wisdom file; a missing file yields empty wisdom.
    ///
    /// Bytes are decoded lossily (invalid UTF-8 becomes U+FFFD) so a
    /// corrupted file always reaches [`Wisdom::parse`] and every rejection
    /// carries the offending line number instead of an opaque decode error.
    pub fn load(path: &Path) -> Result<Self, String> {
        match std::fs::read(path) {
            Ok(bytes) => Self::parse(&String::from_utf8_lossy(&bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Self::new()),
            Err(e) => Err(format!("reading {}: {e}", path.display())),
        }
    }

    /// Save to a wisdom file, crash-safely.
    ///
    /// The bytes are written to `<path>.tmp` first and moved into place
    /// with an atomic rename, so an interruption at any point (crash,
    /// kill, disk-full error) leaves the previous wisdom file intact —
    /// never a truncated half-write. The `wisdom/save` fault site sits
    /// between the two halves of the write to let tests prove exactly
    /// that.
    pub fn save(&self, path: &Path) -> Result<(), String> {
        let mut tmp = path.as_os_str().to_os_string();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        let bytes = self.to_string_format().into_bytes();
        let result = (|| -> Result<(), String> {
            let mut f = std::fs::File::create(&tmp)
                .map_err(|e| format!("creating {}: {e}", tmp.display()))?;
            let mid = bytes.len() / 2;
            f.write_all(&bytes[..mid])
                .map_err(|e| format!("writing {}: {e}", tmp.display()))?;
            if lowino_testkit::faults::WISDOM_SAVE.fire() {
                // Simulated crash mid-write: the temp file is left
                // half-written and the rename never happens.
                return Err(format!(
                    "injected fault: wisdom/save (crash mid-write of {})",
                    tmp.display()
                ));
            }
            f.write_all(&bytes[mid..])
                .map_err(|e| format!("writing {}: {e}", tmp.display()))?;
            f.sync_all()
                .map_err(|e| format!("syncing {}: {e}", tmp.display()))?;
            drop(f);
            std::fs::rename(&tmp, path).map_err(|e| {
                format!("renaming {} -> {}: {e}", tmp.display(), path.display())
            })
        })();
        if result.is_err() {
            std::fs::remove_file(&tmp).ok();
        }
        result
    }

    /// Concurrent-writer save: re-load the file, merge `self`'s entries
    /// over it, and [`Wisdom::save`] the union — so two processes (or the
    /// background retuner and a foreground tuner) saving interleaved keep
    /// *both* writers' entries instead of last-writer-wins clobbering.
    /// A missing or unparseable on-disk file contributes nothing (a
    /// corrupt file is already lost; this path replaces it with good
    /// data). Inherits `save`'s crash safety and its fault site.
    pub fn merge_save(&self, path: &Path) -> Result<(), String> {
        let mut merged = Self::load(path).unwrap_or_default();
        merged.merge(self);
        merged.save(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const B1: Blocking = Blocking { n_blk: 96, c_blk: 256, k_blk: 256, row_blk: 6, col_blk: 4 };
    const B2: Blocking = Blocking { n_blk: 48, c_blk: 512, k_blk: 64, row_blk: 8, col_blk: 2 };

    #[test]
    fn tuner_returns_valid_blocking_from_topk() {
        let shape = GemmShape { t: 4, n: 64, c: 32, k: 64 };
        let mut pool = StaticPool::new(1);
        let (best, log) = tune_blocking(SimdTier::detect(), &shape, &mut pool, 1);
        assert!(best.validate().is_ok());
        assert!(!log.is_empty());
        assert!(log.len() <= TUNE_TOP_K, "tuner must only measure the top-K");
        // The winner is the measured minimum.
        let min = log.iter().map(|m| m.time).min().unwrap();
        assert_eq!(log.iter().find(|m| m.time == min).unwrap().blocking, best);
    }

    #[test]
    fn full_sweep_measures_the_whole_lattice() {
        let shape = GemmShape { t: 2, n: 32, c: 16, k: 64 };
        let mut pool = StaticPool::new(1);
        let (best, log) = tune_blocking_full(SimdTier::detect(), &shape, &mut pool, 1);
        assert!(best.validate().is_ok());
        assert_eq!(log.len(), crate::cost::candidate_lattice(&shape).len());
    }

    #[test]
    fn wisdom_round_trip() {
        let mut w = Wisdom::new();
        let s1 = GemmShape { t: 16, n: 4096, c: 256, k: 256 };
        let s2 = GemmShape { t: 36, n: 1024, c: 512, k: 512 };
        w.insert(SimdTier::Avx512Vnni, &s1, B1);
        w.insert(SimdTier::Avx2, &s2, B2);
        let text = w.to_string_format();
        assert!(text.starts_with("# lowino wisdom v2\n"));
        let back = Wisdom::parse(&text).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.class_len(), 2);
        assert_eq!(back.get(SimdTier::Avx512Vnni, &s1), Some(B1));
        assert_eq!(back.get(SimdTier::Avx2, &s2), Some(B2));
        assert_eq!(back.get(SimdTier::Avx2, &GemmShape { t: 1, n: 1, c: 1, k: 1 }), None);
    }

    #[test]
    fn wisdom_is_tier_keyed_and_never_reused_across_tiers() {
        // The satellite bugfix: a file tuned under one tier must not hand
        // its blocking to a different tier (neither exact nor class).
        let mut w = Wisdom::new();
        let s = GemmShape { t: 16, n: 1024, c: 256, k: 256 };
        w.insert(SimdTier::Avx512Vnni, &s, B1);
        assert_eq!(w.get(SimdTier::Avx512Vnni, &s), Some(B1));
        assert_eq!(w.get(SimdTier::Avx2, &s), None);
        assert_eq!(w.get(SimdTier::Scalar, &s), None);
        assert_eq!(w.get_class(SimdTier::Avx2, &s), None);
        // And the same holds after a disk round trip.
        let back = Wisdom::parse(&w.to_string_format()).unwrap();
        assert_eq!(back.get(SimdTier::Avx512Vnni, &s), Some(B1));
        assert_eq!(back.get(SimdTier::Avx2, &s), None);
        let (b, src) = back.blocking_for(SimdTier::Avx2, &s);
        assert_eq!(src, SeedSource::Model, "foreign tier must re-derive");
        assert!(b.validate().is_ok());
    }

    #[test]
    fn v1_files_still_parse_as_tierless_fallbacks() {
        let text = "# lowino wisdom v1\n16 100 64 128 -> 48 64 128 4 4\n";
        let w = Wisdom::parse(text).unwrap();
        assert_eq!(w.len(), 1);
        let s = GemmShape { t: 16, n: 100, c: 64, k: 128 };
        let want = Blocking { n_blk: 48, c_blk: 64, k_blk: 128, row_blk: 4, col_blk: 4 };
        // Any tier may use the legacy entry for its exact shape…
        for tier in [SimdTier::Scalar, SimdTier::Avx2, SimdTier::Avx512Vnni] {
            assert_eq!(w.get(tier, &s), Some(want));
        }
        // …but it contributes no class generalisation.
        assert_eq!(w.class_len(), 0);
        // And it survives a v2 re-serialisation.
        let back = Wisdom::parse(&w.to_string_format()).unwrap();
        assert_eq!(back.get(SimdTier::Avx2, &s), Some(want));
    }

    #[test]
    fn blocking_for_ladder_exact_class_model() {
        let mut w = Wisdom::new();
        let tuned = GemmShape { t: 16, n: 1000, c: 200, k: 200 };
        w.insert(SimdTier::Avx512Vnni, &tuned, B1);

        // Exact shape wins.
        let (b, src) = w.blocking_for(SimdTier::Avx512Vnni, &tuned);
        assert_eq!((b, src), (B1, SeedSource::Exact));

        // A different shape in the same class (same ⌈log₂⌉ buckets) gets
        // the class entry.
        let neighbour = GemmShape { t: 16, n: 513, c: 129, k: 129 };
        assert_eq!(ShapeClass::of(&neighbour), ShapeClass::of(&tuned));
        let (b, src) = w.blocking_for(SimdTier::Avx512Vnni, &neighbour);
        assert_eq!((b, src), (B1, SeedSource::Class));

        // A shape in a different class falls through to the cost model.
        let far = GemmShape { t: 16, n: 8192, c: 16, k: 1024 };
        let (b, src) = w.blocking_for(SimdTier::Avx512Vnni, &far);
        assert_eq!(src, SeedSource::Model);
        assert!(b.validate().is_ok());
    }

    #[test]
    fn merge_keeps_both_writers_entries() {
        let s1 = GemmShape { t: 16, n: 100, c: 64, k: 128 };
        let s2 = GemmShape { t: 36, n: 200, c: 128, k: 64 };
        let mut a = Wisdom::new();
        a.insert(SimdTier::Avx2, &s1, B1);
        let mut b = Wisdom::new();
        b.insert(SimdTier::Avx2, &s2, B2);
        a.merge(&b);
        assert_eq!(a.get(SimdTier::Avx2, &s1), Some(B1));
        assert_eq!(a.get(SimdTier::Avx2, &s2), Some(B2));
        // Conflicts: the merged-in (newer) writer wins.
        let mut c = Wisdom::new();
        c.insert(SimdTier::Avx2, &s1, B2);
        a.merge(&c);
        assert_eq!(a.get(SimdTier::Avx2, &s1), Some(B2));
    }

    #[test]
    fn wisdom_parse_errors() {
        assert!(Wisdom::parse("1 2 3 4 5 6").is_err()); // no arrow
        assert!(Wisdom::parse("1 2 3 -> 1 2 3 4 5").is_err()); // short key
        assert!(Wisdom::parse("1 2 3 4 -> 1 2 3").is_err()); // short value
        assert!(Wisdom::parse("sse9 exact 1 2 3 4 -> 1 2 3 4 5").is_err()); // bad tier
        assert!(Wisdom::parse("avx2 blah 1 2 3 4 -> 1 2 3 4 5").is_err()); // bad tag
        assert!(Wisdom::parse("avx2 exact 1 2 3 -> 1 2 3 4 5").is_err()); // short key
        assert!(Wisdom::parse("avx2 class 1 2 3 999 -> 1 2 3 4 5").is_err()); // exponent range
        // Comments and blanks are fine; both line dialects parse.
        let w = Wisdom::parse(
            "# comment\n\n1 2 3 4 -> 5 6 7 8 9\navx2 exact 1 2 3 4 -> 5 6 7 8 9\n",
        )
        .unwrap();
        assert_eq!(w.len(), 2);
    }

    /// Serialises the tests that call `Wisdom::save`: the `wisdom/save`
    /// fault site is process-global, so a concurrently-running save could
    /// otherwise consume (or trip over) an armed fault meant for another
    /// test.
    static SAVE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn wisdom_file_io() {
        let _guard = SAVE_LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join("lowino-wisdom-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wisdom.txt");
        let mut w = Wisdom::new();
        let s = GemmShape { t: 16, n: 100, c: 64, k: 128 };
        w.insert(SimdTier::Avx512Vnni, &s, B1);
        w.save(&path).unwrap();
        let back = Wisdom::load(&path).unwrap();
        assert_eq!(back.get(SimdTier::Avx512Vnni, &s), w.get(SimdTier::Avx512Vnni, &s));
        std::fs::remove_file(&path).ok();
        // Missing file -> empty wisdom, not an error.
        let empty = Wisdom::load(&path).unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn save_crash_leaves_old_wisdom_intact() {
        use lowino_testkit::faults::WISDOM_SAVE;
        let _guard = SAVE_LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join(format!(
            "lowino-wisdom-crash-test-{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wisdom.txt");

        // Persist a first generation of wisdom normally.
        let mut old = Wisdom::new();
        let s_old = GemmShape { t: 16, n: 100, c: 64, k: 128 };
        old.insert(SimdTier::Avx2, &s_old, B1);
        old.save(&path).unwrap();

        // A crash mid-save of a *new* generation must not corrupt it.
        let mut new = Wisdom::new();
        new.insert(SimdTier::Avx2, &GemmShape { t: 36, n: 1024, c: 512, k: 512 }, B2);
        WISDOM_SAVE.arm();
        let err = new.save(&path).expect_err("armed fault must fail the save");
        assert!(err.contains("injected fault: wisdom/save"), "got: {err}");
        assert!(!WISDOM_SAVE.is_armed(), "fault is one-shot");

        let back = Wisdom::load(&path).expect("old file must still parse");
        assert_eq!(back.len(), 1);
        assert_eq!(back.get(SimdTier::Avx2, &s_old), old.get(SimdTier::Avx2, &s_old));

        // Disarmed retry succeeds and replaces the file atomically.
        new.save(&path).expect("disarmed save succeeds");
        let back = Wisdom::load(&path).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back.get(SimdTier::Avx2, &s_old), None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_merge_save_keeps_both_writers_entries() {
        use lowino_testkit::faults::WISDOM_SAVE;
        let _guard = SAVE_LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join(format!(
            "lowino-wisdom-merge-test-{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wisdom.txt");
        std::fs::remove_file(&path).ok();

        // Two independent writers (e.g. the background retuner and a
        // foreground tuning run) save interleaved: both entries survive.
        let s_a = GemmShape { t: 16, n: 100, c: 64, k: 128 };
        let s_b = GemmShape { t: 36, n: 1024, c: 512, k: 512 };
        let mut a = Wisdom::new();
        a.insert(SimdTier::Avx2, &s_a, B1);
        let mut b = Wisdom::new();
        b.insert(SimdTier::Avx512Vnni, &s_b, B2);
        a.merge_save(&path).unwrap();
        b.merge_save(&path).unwrap();
        let disk = Wisdom::load(&path).unwrap();
        assert_eq!(disk.len(), 2, "merge_save must union, not clobber");
        assert_eq!(disk.get(SimdTier::Avx2, &s_a), Some(B1));
        assert_eq!(disk.get(SimdTier::Avx512Vnni, &s_b), Some(B2));

        // A crash mid-merge-save (the crash-safe path's fault site) leaves
        // the union intact on disk; the disarmed retry lands the third
        // writer's entry without losing the first two.
        let mut c = Wisdom::new();
        let s_c = GemmShape { t: 4, n: 64, c: 32, k: 64 };
        c.insert(SimdTier::Scalar, &s_c, B1);
        WISDOM_SAVE.arm();
        let err = c.merge_save(&path).expect_err("armed fault fails the save");
        assert!(err.contains("injected fault: wisdom/save"), "{err}");
        let disk = Wisdom::load(&path).expect("file must stay loadable");
        assert_eq!(disk.len(), 2, "crashed merge_save must not lose entries");
        c.merge_save(&path).expect("disarmed retry");
        let disk = Wisdom::load(&path).unwrap();
        assert_eq!(disk.len(), 3);
        assert_eq!(disk.get(SimdTier::Avx2, &s_a), Some(B1));
        assert_eq!(disk.get(SimdTier::Avx512Vnni, &s_b), Some(B2));
        assert_eq!(disk.get(SimdTier::Scalar, &s_c), Some(B1));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn blocking_or_default_falls_back() {
        let w = Wisdom::new();
        let s = GemmShape { t: 16, n: 128, c: 64, k: 64 };
        assert_eq!(
            w.blocking_or_default(SimdTier::Avx2, &s),
            Blocking::default_for(&s)
        );
    }

    use lowino_testkit::{prop_assert, property, vec_of};

    property! {
        #[cases(120)]
        fn wisdom_load_survives_random_byte_corruption(
            muts in vec_of((0usize..4096, 0u16..256), 1..9)
        ) {
            // Start from a valid file and flip 1–8 arbitrary bytes
            // (arbitrary values, including non-UTF-8 and control bytes).
            let mut w = Wisdom::new();
            w.insert(SimdTier::Avx512Vnni, &GemmShape { t: 16, n: 4096, c: 256, k: 256 }, B1);
            w.insert(SimdTier::Avx2, &GemmShape { t: 36, n: 1024, c: 512, k: 512 }, B2);
            let mut bytes = w.to_string_format().into_bytes();
            let len = bytes.len();
            for &(pos, byte) in &muts {
                bytes[pos % len] = byte as u8;
            }

            use std::sync::atomic::{AtomicU64, Ordering};
            static UNIQ: AtomicU64 = AtomicU64::new(0);
            let path = std::env::temp_dir().join(format!(
                "lowino-wisdom-fuzz-{}-{}.txt",
                std::process::id(),
                UNIQ.fetch_add(1, Ordering::Relaxed)
            ));
            std::fs::write(&path, &bytes).unwrap();
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                Wisdom::load(&path)
            }));
            std::fs::remove_file(&path).ok();

            let result = match result {
                Ok(r) => r,
                Err(_) => {
                    prop_assert!(false, "Wisdom::load panicked on corrupt input");
                    return Ok(());
                }
            };
            if let Err(msg) = result {
                // Every rejection must name the offending line.
                let tail = match msg.split_once("line ") {
                    Some((_, tail)) => tail,
                    None => {
                        prop_assert!(false, "error without line number: {msg}");
                        return Ok(());
                    }
                };
                let digits: String =
                    tail.chars().take_while(|c| c.is_ascii_digit()).collect();
                let lineno: usize = match digits.parse() {
                    Ok(n) => n,
                    Err(_) => {
                        prop_assert!(false, "no line number after 'line ': {msg}");
                        return Ok(());
                    }
                };
                let line_count = String::from_utf8_lossy(&bytes).lines().count();
                prop_assert!(
                    lineno >= 1 && lineno <= line_count.max(1),
                    "line {lineno} out of range 1..={line_count}: {msg}"
                );
            }
        }
    }
}
