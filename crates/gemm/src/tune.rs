//! Auto-tuning of the blocking parameters and wisdom persistence
//! (paper §4.3.4).
//!
//! The tuner measures every candidate `(N_blk, C_blk, K_blk, row_blk,
//! col_blk)` from a pruned search space on the actual GEMM shape and keeps
//! the fastest — "the optimal parameters are saved into a wisdom file and
//! used in inference". The wisdom file is a plain line-oriented text format
//! (no extra dependencies):
//!
//! ```text
//! # lowino wisdom v1
//! t n c k -> n_blk c_blk k_blk row_blk col_blk
//! ```

use std::collections::HashMap;
use std::io::Write as _;
use std::path::Path;
use std::time::{Duration, Instant};

use lowino_parallel::StaticPool;
use lowino_simd::SimdTier;
use lowino_tensor::round_up;

use crate::driver::{batched_gemm_u8i8, normalize_blocking, GemmShape};
use crate::kernel::Blocking;
use crate::panels::{UPanel, VPanel, ZPanel};

/// Candidate register tiles, best-throughput-first on VNNI hardware.
const REGISTER_TILES: &[(usize, usize)] = &[(6, 4), (4, 4), (2, 4), (8, 2), (6, 2), (4, 2), (8, 1)];

/// Candidate `N_blk` values.
const N_BLKS: &[usize] = &[48, 96, 192];

/// One measured tuning candidate.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// The blocking that was measured.
    pub blocking: Blocking,
    /// Best-of-repeats wall time.
    pub time: Duration,
}

/// Tune the blocking for a GEMM shape by direct measurement on synthetic
/// operands. Returns the winner and the full measurement log (for the
/// ablation bench).
pub fn tune_blocking(
    tier: SimdTier,
    shape: &GemmShape,
    pool: &mut StaticPool,
    repeats: usize,
) -> (Blocking, Vec<Measurement>) {
    let cp = round_up(shape.c, 4);
    let kp = round_up(shape.k, 64);
    let mut v = VPanel::new(shape.t, shape.n, shape.c);
    // Deterministic non-trivial fill (content doesn't affect timing).
    for t in 0..shape.t {
        for n in 0..shape.n {
            for (c, x) in v.row_mut(t, n).iter_mut().enumerate() {
                *x = ((t * 31 + n * 7 + c) % 251) as u8;
            }
        }
    }
    let mut u = UPanel::new(shape.t, shape.c, shape.k);
    u.finalize_compensation();
    let mut z = ZPanel::new(shape.t, shape.n, shape.k);

    let mut candidates: Vec<Blocking> = Vec::new();
    for &(row_blk, col_blk) in REGISTER_TILES {
        for &n_blk in N_BLKS {
            for c_blk in [cp.min(64), cp.min(256), cp] {
                for k_blk in [kp.min(64), kp.min(256), kp] {
                    let b = normalize_blocking(
                        &Blocking {
                            n_blk,
                            c_blk,
                            k_blk,
                            row_blk,
                            col_blk,
                        },
                        shape,
                    );
                    if b.validate().is_ok() && !candidates.contains(&b) {
                        candidates.push(b);
                    }
                }
            }
        }
    }

    let mut log = Vec::with_capacity(candidates.len());
    let mut best: Option<(Duration, Blocking)> = None;
    for b in candidates {
        // Warm-up once, then best-of-`repeats`.
        batched_gemm_u8i8(tier, shape, &b, &v, &u, &mut z, pool);
        let mut t_best = Duration::MAX;
        for _ in 0..repeats.max(1) {
            let start = Instant::now();
            batched_gemm_u8i8(tier, shape, &b, &v, &u, &mut z, pool);
            t_best = t_best.min(start.elapsed());
        }
        if best.as_ref().is_none_or(|(t, _)| t_best < *t) {
            best = Some((t_best, b));
        }
        // Every candidate measurement lands in the trace as an instant
        // event (payload = best-of-repeats nanoseconds), so a traced tuning
        // run shows the whole search, not just the winner.
        lowino_trace::instant("tune/measurement", t_best.as_nanos() as u64);
        log.push(Measurement {
            blocking: b,
            time: t_best,
        });
    }
    (best.expect("non-empty candidate set").1, log)
}

/// Persistent tuning results keyed by GEMM shape (§4.3.4's wisdom file).
#[derive(Debug, Clone, Default)]
pub struct Wisdom {
    entries: HashMap<(usize, usize, usize, usize), Blocking>,
}

impl Wisdom {
    /// Empty wisdom.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of remembered shapes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no shapes are remembered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up the tuned blocking for a shape.
    pub fn get(&self, shape: &GemmShape) -> Option<Blocking> {
        self.entries
            .get(&(shape.t, shape.n, shape.c, shape.k))
            .copied()
    }

    /// Remember a tuned blocking.
    pub fn insert(&mut self, shape: &GemmShape, blocking: Blocking) {
        self.entries
            .insert((shape.t, shape.n, shape.c, shape.k), blocking);
    }

    /// Blocking for a shape: remembered, or the static default.
    pub fn blocking_or_default(&self, shape: &GemmShape) -> Blocking {
        self.get(shape)
            .unwrap_or_else(|| Blocking::default_for(shape))
    }

    /// Serialise to the line format.
    pub fn to_string_format(&self) -> String {
        let mut lines: Vec<String> = self
            .entries
            .iter()
            .map(|((t, n, c, k), b)| {
                format!(
                    "{t} {n} {c} {k} -> {} {} {} {} {}",
                    b.n_blk, b.c_blk, b.k_blk, b.row_blk, b.col_blk
                )
            })
            .collect();
        lines.sort();
        format!("# lowino wisdom v1\n{}\n", lines.join("\n"))
    }

    /// Parse the line format; unknown or malformed lines are rejected.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut w = Wisdom::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, val) = line
                .split_once("->")
                .ok_or_else(|| format!("line {}: missing '->'", lineno + 1))?;
            let parse_nums = |s: &str, want: usize| -> Result<Vec<usize>, String> {
                let nums: Result<Vec<usize>, _> =
                    s.split_whitespace().map(str::parse::<usize>).collect();
                let nums = nums.map_err(|e| format!("line {}: {e}", lineno + 1))?;
                if nums.len() != want {
                    return Err(format!(
                        "line {}: expected {want} numbers, got {}",
                        lineno + 1,
                        nums.len()
                    ));
                }
                Ok(nums)
            };
            let k = parse_nums(key, 4)?;
            let v = parse_nums(val, 5)?;
            w.entries.insert(
                (k[0], k[1], k[2], k[3]),
                Blocking {
                    n_blk: v[0],
                    c_blk: v[1],
                    k_blk: v[2],
                    row_blk: v[3],
                    col_blk: v[4],
                },
            );
        }
        Ok(w)
    }

    /// Load from a wisdom file; a missing file yields empty wisdom.
    ///
    /// Bytes are decoded lossily (invalid UTF-8 becomes U+FFFD) so a
    /// corrupted file always reaches [`Wisdom::parse`] and every rejection
    /// carries the offending line number instead of an opaque decode error.
    pub fn load(path: &Path) -> Result<Self, String> {
        match std::fs::read(path) {
            Ok(bytes) => Self::parse(&String::from_utf8_lossy(&bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Self::new()),
            Err(e) => Err(format!("reading {}: {e}", path.display())),
        }
    }

    /// Save to a wisdom file, crash-safely.
    ///
    /// The bytes are written to `<path>.tmp` first and moved into place
    /// with an atomic rename, so an interruption at any point (crash,
    /// kill, disk-full error) leaves the previous wisdom file intact —
    /// never a truncated half-write. The `wisdom/save` fault site sits
    /// between the two halves of the write to let tests prove exactly
    /// that.
    pub fn save(&self, path: &Path) -> Result<(), String> {
        let mut tmp = path.as_os_str().to_os_string();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        let bytes = self.to_string_format().into_bytes();
        let result = (|| -> Result<(), String> {
            let mut f = std::fs::File::create(&tmp)
                .map_err(|e| format!("creating {}: {e}", tmp.display()))?;
            let mid = bytes.len() / 2;
            f.write_all(&bytes[..mid])
                .map_err(|e| format!("writing {}: {e}", tmp.display()))?;
            if lowino_testkit::faults::WISDOM_SAVE.fire() {
                // Simulated crash mid-write: the temp file is left
                // half-written and the rename never happens.
                return Err(format!(
                    "injected fault: wisdom/save (crash mid-write of {})",
                    tmp.display()
                ));
            }
            f.write_all(&bytes[mid..])
                .map_err(|e| format!("writing {}: {e}", tmp.display()))?;
            f.sync_all()
                .map_err(|e| format!("syncing {}: {e}", tmp.display()))?;
            drop(f);
            std::fs::rename(&tmp, path).map_err(|e| {
                format!("renaming {} -> {}: {e}", tmp.display(), path.display())
            })
        })();
        if result.is_err() {
            std::fs::remove_file(&tmp).ok();
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuner_returns_valid_blocking() {
        let shape = GemmShape { t: 4, n: 64, c: 32, k: 64 };
        let mut pool = StaticPool::new(1);
        let (best, log) = tune_blocking(SimdTier::detect(), &shape, &mut pool, 1);
        assert!(best.validate().is_ok());
        assert!(!log.is_empty());
        // The winner is the measured minimum.
        let min = log.iter().map(|m| m.time).min().unwrap();
        assert_eq!(
            log.iter().find(|m| m.time == min).unwrap().blocking,
            best
        );
    }

    #[test]
    fn wisdom_round_trip() {
        let mut w = Wisdom::new();
        let s1 = GemmShape { t: 16, n: 4096, c: 256, k: 256 };
        let s2 = GemmShape { t: 36, n: 1024, c: 512, k: 512 };
        w.insert(&s1, Blocking { n_blk: 96, c_blk: 256, k_blk: 256, row_blk: 6, col_blk: 4 });
        w.insert(&s2, Blocking { n_blk: 48, c_blk: 512, k_blk: 64, row_blk: 8, col_blk: 2 });
        let text = w.to_string_format();
        let back = Wisdom::parse(&text).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.get(&s1), w.get(&s1));
        assert_eq!(back.get(&s2), w.get(&s2));
        assert_eq!(back.get(&GemmShape { t: 1, n: 1, c: 1, k: 1 }), None);
    }

    #[test]
    fn wisdom_parse_errors() {
        assert!(Wisdom::parse("1 2 3 4 5 6").is_err()); // no arrow
        assert!(Wisdom::parse("1 2 3 -> 1 2 3 4 5").is_err()); // short key
        assert!(Wisdom::parse("1 2 3 4 -> 1 2 3").is_err()); // short value
        assert!(Wisdom::parse("a b c d -> 1 2 3 4 5").is_err()); // not numbers
        // Comments and blanks are fine.
        let w = Wisdom::parse("# comment\n\n1 2 3 4 -> 5 6 7 8 9\n").unwrap();
        assert_eq!(w.len(), 1);
    }

    /// Serialises the tests that call `Wisdom::save`: the `wisdom/save`
    /// fault site is process-global, so a concurrently-running save could
    /// otherwise consume (or trip over) an armed fault meant for another
    /// test.
    static SAVE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn wisdom_file_io() {
        let _guard = SAVE_LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join("lowino-wisdom-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wisdom.txt");
        let mut w = Wisdom::new();
        let s = GemmShape { t: 16, n: 100, c: 64, k: 128 };
        w.insert(&s, Blocking { n_blk: 48, c_blk: 64, k_blk: 128, row_blk: 4, col_blk: 4 });
        w.save(&path).unwrap();
        let back = Wisdom::load(&path).unwrap();
        assert_eq!(back.get(&s), w.get(&s));
        std::fs::remove_file(&path).ok();
        // Missing file -> empty wisdom, not an error.
        let empty = Wisdom::load(&path).unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn save_crash_leaves_old_wisdom_intact() {
        use lowino_testkit::faults::WISDOM_SAVE;
        let _guard = SAVE_LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join(format!(
            "lowino-wisdom-crash-test-{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wisdom.txt");

        // Persist a first generation of wisdom normally.
        let mut old = Wisdom::new();
        let s_old = GemmShape { t: 16, n: 100, c: 64, k: 128 };
        old.insert(&s_old, Blocking { n_blk: 48, c_blk: 64, k_blk: 128, row_blk: 4, col_blk: 4 });
        old.save(&path).unwrap();

        // A crash mid-save of a *new* generation must not corrupt it.
        let mut new = Wisdom::new();
        new.insert(
            &GemmShape { t: 36, n: 1024, c: 512, k: 512 },
            Blocking { n_blk: 96, c_blk: 256, k_blk: 256, row_blk: 6, col_blk: 4 },
        );
        WISDOM_SAVE.arm();
        let err = new.save(&path).expect_err("armed fault must fail the save");
        assert!(err.contains("injected fault: wisdom/save"), "got: {err}");
        assert!(!WISDOM_SAVE.is_armed(), "fault is one-shot");

        let back = Wisdom::load(&path).expect("old file must still parse");
        assert_eq!(back.len(), 1);
        assert_eq!(back.get(&s_old), old.get(&s_old), "old wisdom corrupted");

        // Disarmed retry succeeds and replaces the file atomically.
        new.save(&path).expect("disarmed save succeeds");
        let back = Wisdom::load(&path).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back.get(&s_old), None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn blocking_or_default_falls_back() {
        let w = Wisdom::new();
        let s = GemmShape { t: 16, n: 128, c: 64, k: 64 };
        assert_eq!(w.blocking_or_default(&s), Blocking::default_for(&s));
    }

    use lowino_testkit::{prop_assert, property, vec_of};

    property! {
        #[cases(120)]
        fn wisdom_load_survives_random_byte_corruption(
            muts in vec_of((0usize..4096, 0u16..256), 1..9)
        ) {
            // Start from a valid file and flip 1–8 arbitrary bytes
            // (arbitrary values, including non-UTF-8 and control bytes).
            let mut w = Wisdom::new();
            w.insert(
                &GemmShape { t: 16, n: 4096, c: 256, k: 256 },
                Blocking { n_blk: 96, c_blk: 256, k_blk: 256, row_blk: 6, col_blk: 4 },
            );
            w.insert(
                &GemmShape { t: 36, n: 1024, c: 512, k: 512 },
                Blocking { n_blk: 48, c_blk: 512, k_blk: 64, row_blk: 8, col_blk: 2 },
            );
            let mut bytes = w.to_string_format().into_bytes();
            let len = bytes.len();
            for &(pos, byte) in &muts {
                bytes[pos % len] = byte as u8;
            }

            use std::sync::atomic::{AtomicU64, Ordering};
            static UNIQ: AtomicU64 = AtomicU64::new(0);
            let path = std::env::temp_dir().join(format!(
                "lowino-wisdom-fuzz-{}-{}.txt",
                std::process::id(),
                UNIQ.fetch_add(1, Ordering::Relaxed)
            ));
            std::fs::write(&path, &bytes).unwrap();
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                Wisdom::load(&path)
            }));
            std::fs::remove_file(&path).ok();

            let result = match result {
                Ok(r) => r,
                Err(_) => {
                    prop_assert!(false, "Wisdom::load panicked on corrupt input");
                    return Ok(());
                }
            };
            if let Err(msg) = result {
                // Every rejection must name the offending line.
                let tail = match msg.split_once("line ") {
                    Some((_, tail)) => tail,
                    None => {
                        prop_assert!(false, "error without line number: {msg}");
                        return Ok(());
                    }
                };
                let digits: String =
                    tail.chars().take_while(|c| c.is_ascii_digit()).collect();
                let lineno: usize = match digits.parse() {
                    Ok(n) => n,
                    Err(_) => {
                        prop_assert!(false, "no line number after 'line ': {msg}");
                        return Ok(());
                    }
                };
                let line_count = String::from_utf8_lossy(&bytes).lines().count();
                prop_assert!(
                    lineno >= 1 && lineno <= line_count.max(1),
                    "line {lineno} out of range 1..={line_count}: {msg}"
                );
            }
        }
    }
}
