//! # lowino-gemm
//!
//! Batched tall-and-skinny low-precision matrix multiplication — the
//! computation-bound stage ② of the LoWino pipeline (paper §4.3).
//!
//! The Winograd element-wise products reduce to `T = (m+r−1)²` independent
//! GEMMs `Z[t] = V[t] × U[t]` with `V: N×C` (u8, compensated), `U: C×K`
//! (i8), `Z: N×K` (i32), where `N` — the number of input tiles — is much
//! larger than `C`/`K`. Off-the-shelf BLAS is weak on this shape, so the
//! paper (and this crate) implements a dedicated kernel with:
//!
//! * **operand panels** in VNNI-native layouts ([`panels`]): `U` interleaved
//!   `[C/4]×[K×4]`, `Z` scattered per tile position so the output transform
//!   reads contiguously (paper Table 1);
//! * **cache blocking** over `N_blk × C_blk × K_blk` sub-matrices (Fig. 5);
//! * **register blocking** `row_blk × col_blk` with one broadcast register
//!   (Fig. 6), constraint `row_blk·col_blk + col_blk < 31`;
//! * the Fig. 7 **micro-kernel**: broadcast 4 input-channel bytes, `vpdpbusd`
//!   against `col_blk` filter registers, non-temporal scatter stores,
//!   software prefetch ([`kernel`]);
//! * **compensation** seeding: accumulators start from
//!   `Z̄ = −128·colsum(U)` so unsigned-u8 inputs compute the signed result
//!   exactly (Eq. 9);
//! * **Autotuner 2.0**: an analytic cost model ranking the blocking
//!   lattice ([`cost`]), tier- and shape-class-keyed wisdom with
//!   zero-stall seeding ([`tune`], §4.3.4), and an online background
//!   retuner publishing winners via atomically swapped tables
//!   ([`retune`]);
//! * INT16 ([`int16`]) and FP32 ([`f32gemm`]) drivers for the up-casting and
//!   full-precision baselines.

pub mod cost;
pub mod f32gemm;
pub mod int16;
pub mod kernel;
pub mod panels;
pub mod reference;
pub mod retune;
pub mod tune;

mod driver;

pub use cost::{candidate_lattice, CacheModel, GemmCostModel};
pub use driver::{batched_gemm_u8i8, GemmShape, GemmTasks, PanelScratch};
pub use driver::normalize_blocking as normalize_for;
pub use f32gemm::{batched_gemm_f32, GemmTasksF32};
pub use int16::{batched_gemm_i16, GemmTasksI16};
pub use kernel::{Blocking, MAX_COL_BLK, MAX_ROW_BLK};
pub use panels::{UPanel, UPanelF32, UPanelI16, VPanel, VPanelF32, VPanelI16, ZPanel, ZPanelF32};
pub use retune::{RetuneConfig, TunePolicy, TuneRuntime, TuneShared, TuneTable};
pub use tune::{
    measure_candidates, tune_blocking, tune_blocking_full, Measurement, SeedSource, ShapeClass,
    Wisdom, TUNE_TOP_K,
};

#[cfg(test)]
mod tests {
    use super::*;
    use lowino_simd::SimdTier;

    #[test]
    fn smoke_one_gemm() {
        let shape = GemmShape {
            t: 1,
            n: 8,
            c: 8,
            k: 16,
        };
        let mut v = VPanel::new(shape.t, shape.n, shape.c);
        let mut u = UPanel::new(shape.t, shape.c, shape.k);
        for n in 0..8 {
            for c in 0..8 {
                v.set(0, n, c, (n * 8 + c) as u8);
            }
        }
        for c in 0..8 {
            for k in 0..16 {
                u.set(0, c, k, ((c * 16 + k) % 32) as i8 - 16);
            }
        }
        u.finalize_compensation();
        let mut z = ZPanel::new(shape.t, shape.n, shape.k);
        batched_gemm_u8i8(
            SimdTier::detect(),
            &shape,
            &Blocking::default_for(&shape),
            &v,
            &u,
            &mut z,
            &mut lowino_parallel::StaticPool::new(1),
        );
        // Cross-check against the naive reference (which applies the same
        // compensation semantics).
        let want = reference::reference_gemm(&v, &u, &shape);
        for n in 0..8 {
            for k in 0..16 {
                assert_eq!(z.get(0, n, k), want[n * 16 + k], "n={n} k={k}");
            }
        }
    }
}
