//! The pipelined driver's bitwise-identity contract.
//!
//! The double-buffered packing walk must be invisible in the output: for
//! every SIMD tier, thread count and cache blocking — including blockings
//! that force many `(K_blk, C_blk)` blocks so the two scratch slots
//! actually cycle — the packed pipeline produces *exactly* the integers of
//! the naive reference (i32 arithmetic is exact, so equality is bitwise).
//! `ci/check.sh` runs this file under every `LOWINO_FORCE_TIER`.

use lowino_gemm::reference::reference_gemm;
use lowino_gemm::{
    batched_gemm_u8i8, Blocking, GemmShape, GemmTasks, PanelScratch, UPanel, VPanel, ZPanel,
};
use lowino_parallel::StaticPool;
use lowino_simd::SimdTier;

fn fill_panels(shape: &GemmShape, seed: u64) -> (VPanel, UPanel) {
    let mut s = seed | 1;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    let mut v = VPanel::new(shape.t, shape.n, shape.c);
    for t in 0..shape.t {
        for n in 0..shape.n {
            for c in 0..shape.c {
                v.set(t, n, c, (next() & 0xFF) as u8);
            }
        }
    }
    let mut u = UPanel::new(shape.t, shape.c, shape.k);
    for t in 0..shape.t {
        for c in 0..shape.c {
            for k in 0..shape.k {
                u.set(t, c, k, (next() & 0xFF) as u8 as i8);
            }
        }
    }
    u.finalize_compensation();
    (v, u)
}

fn assert_matches_reference(
    shape: GemmShape,
    blocking: Blocking,
    threads: usize,
    tier: SimdTier,
) {
    let (v, u) = fill_panels(&shape, 0x9E3779B9 ^ (shape.c as u64) << 16 ^ shape.k as u64);
    let mut z = ZPanel::new(shape.t, shape.n, shape.k);
    let mut pool = StaticPool::new(threads);
    batched_gemm_u8i8(tier, &shape, &blocking, &v, &u, &mut z, &mut pool);
    let want = reference_gemm(&v, &u, &shape);
    for t in 0..shape.t {
        for n in 0..shape.n {
            for k in 0..shape.k {
                assert_eq!(
                    z.get(t, n, k),
                    want[(t * shape.n + n) * shape.k + k],
                    "tier={tier} threads={threads} t={t} n={n} k={k} ({shape:?}, {blocking:?})"
                );
            }
        }
    }
}

/// Multi-block shapes across every available tier: 2×3 cache blocks over
/// (K, C) make the two slots alternate through five pack hand-offs per
/// task, and the C chunking exercises the Z̄-seed → accumulate transition
/// on packed operands.
#[test]
fn pipelined_blocks_match_reference_all_tiers() {
    let shape = GemmShape { t: 2, n: 21, c: 88, k: 192 };
    let blocking = Blocking { n_blk: 8, c_blk: 32, k_blk: 64, row_blk: 6, col_blk: 2 };
    for tier in SimdTier::available() {
        assert_matches_reference(shape, blocking, 1, tier);
        assert_matches_reference(shape, blocking, 3, tier);
    }
}

/// A single cache block degenerates the pipeline to prologue-pack + one
/// compute — the epilogue must not pack (or read) a phantom second block.
#[test]
fn single_block_pipeline_matches_reference() {
    let shape = GemmShape { t: 1, n: 9, c: 16, k: 64 };
    let blocking = Blocking { n_blk: 16, c_blk: 64, k_blk: 64, row_blk: 4, col_blk: 4 };
    for tier in SimdTier::available() {
        assert_matches_reference(shape, blocking, 1, tier);
    }
}

/// Uneven tails: blockings that leave partial final blocks in both C and K
/// (packed stride ≠ full-block stride on the last column of blocks).
#[test]
fn ragged_tail_blocks_match_reference() {
    let shape = GemmShape { t: 3, n: 13, c: 100, k: 130 };
    let blocking = Blocking { n_blk: 5, c_blk: 64, k_blk: 128, row_blk: 3, col_blk: 1 };
    assert_matches_reference(shape, blocking, 2, SimdTier::detect());
}

/// One `PanelScratch` reused across plans of different shapes: the slots
/// grow to the largest block and smaller follow-up layers must not shrink,
/// move, or corrupt them — the executor-arena reuse pattern.
#[test]
fn scratch_reuse_across_shapes_stays_exact() {
    let tier = SimdTier::detect();
    let mut pack = PanelScratch::new();
    for (shape, blocking) in [
        (
            GemmShape { t: 1, n: 7, c: 72, k: 128 },
            Blocking { n_blk: 4, c_blk: 32, k_blk: 64, row_blk: 2, col_blk: 2 },
        ),
        (
            GemmShape { t: 2, n: 5, c: 12, k: 64 },
            Blocking { n_blk: 8, c_blk: 64, k_blk: 64, row_blk: 5, col_blk: 1 },
        ),
        (
            GemmShape { t: 1, n: 11, c: 140, k: 256 },
            Blocking { n_blk: 6, c_blk: 64, k_blk: 128, row_blk: 6, col_blk: 4 },
        ),
    ] {
        let (v, u) = fill_panels(&shape, 0xF00D ^ shape.n as u64);
        let mut z = ZPanel::new(shape.t, shape.n, shape.k);
        let tasks = GemmTasks::plan(tier, &shape, &blocking, &v, &u, &mut z);
        tasks.run_range(0..tasks.total(), &mut pack);
        let want = reference_gemm(&v, &u, &shape);
        for t in 0..shape.t {
            for n in 0..shape.n {
                for k in 0..shape.k {
                    assert_eq!(
                        tasks.z().get(t, n, k),
                        want[(t * shape.n + n) * shape.k + k],
                        "t={t} n={n} k={k} ({shape:?})"
                    );
                }
            }
        }
    }
}

/// Traced pipelined runs always carry the new counters — `gemm/pack_ns`
/// (pack time) and `gemm/steal` (thief-claimed chunk flag), emitted even
/// when zero so CI greps are deterministic. The recorder is process-global;
/// concurrent sibling tests may add events to the ring, but only this test
/// drains and asserts, and presence is monotone under extra traffic.
#[test]
fn traced_run_emits_pack_and_steal_counters() {
    let shape = GemmShape { t: 1, n: 6, c: 24, k: 64 };
    let blocking = Blocking { n_blk: 4, c_blk: 8, k_blk: 64, row_blk: 2, col_blk: 2 };
    let (v, u) = fill_panels(&shape, 0xBEE);
    let mut z = ZPanel::new(shape.t, shape.n, shape.k);
    let mut pool = StaticPool::new(2);
    lowino_trace::set_enabled(true);
    batched_gemm_u8i8(SimdTier::detect(), &shape, &blocking, &v, &u, &mut z, &mut pool);
    let threads = lowino_trace::drain();
    lowino_trace::set_enabled(false);
    let names: Vec<&str> = threads
        .iter()
        .flat_map(|th| th.events.iter().map(|e| e.name))
        .collect();
    assert!(names.contains(&"gemm/pack_ns"), "missing gemm/pack_ns in {names:?}");
    assert!(names.contains(&"gemm/steal"), "missing gemm/steal in {names:?}");
    lowino_trace::reset();
}
