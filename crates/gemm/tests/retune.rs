//! Online-retune integration: atomic publication under load with bitwise
//! output stability, retuner lifecycle/shutdown, and the release-mode
//! guard that cost-model pruning keeps the measured winner.
//!
//! The swap-under-load test leans on a structural fact of the INT8 GEMM:
//! integer accumulation is exact and associative, so the blocking changes
//! scheduling but **never** the numbers in `Z`. A forward loop that keeps
//! executing while the retuner publishes new blockings must therefore
//! produce bitwise-identical output every iteration — any divergence means
//! a torn table read or a blocking-dependent result, both bugs.

use std::sync::Arc;
use std::time::Duration;

use lowino_gemm::{
    batched_gemm_u8i8, tune_blocking, tune_blocking_full, Blocking, GemmShape, RetuneConfig,
    TunePolicy, TuneRuntime, UPanel, VPanel, Wisdom, ZPanel, TUNE_TOP_K,
};
use lowino_parallel::StaticPool;
use lowino_simd::SimdTier;

fn fill_panels(shape: &GemmShape) -> (VPanel, UPanel) {
    let mut v = VPanel::new(shape.t, shape.n, shape.c);
    for t in 0..shape.t {
        for n in 0..shape.n {
            for (c, x) in v.row_mut(t, n).iter_mut().enumerate() {
                *x = ((t * 13 + n * 31 + c * 7) % 253) as u8;
            }
        }
    }
    let mut u = UPanel::new(shape.t, shape.c, shape.k);
    for t in 0..shape.t {
        for c in 0..shape.c {
            for k in 0..shape.k {
                u.set(t, c, k, (((t * 5 + c * 3 + k) % 255) as i16 - 127) as i8);
            }
        }
    }
    u.finalize_compensation();
    (v, u)
}

#[test]
fn background_retuner_swaps_atomically_under_load_with_bitwise_identical_output() {
    let tier = SimdTier::detect();
    let shape = GemmShape { t: 4, n: 96, c: 32, k: 64 };
    let (v, u) = fill_panels(&shape);

    let mut rt = TuneRuntime::new(TunePolicy::Background);
    let mut cfg = RetuneConfig::new(tier);
    cfg.interval = Duration::from_millis(1);
    cfg.repeats = 1;
    assert!(rt.start_retuner(cfg, Wisdom::new()));
    assert!(rt.is_retuning());

    // Reference output with the default blocking, before any publication.
    let mut pool = StaticPool::new(2);
    let mut z = ZPanel::new(shape.t, shape.n, shape.k);
    batched_gemm_u8i8(tier, &shape, &Blocking::default_for(&shape), &v, &u, &mut z, &mut pool);
    let reference: Vec<i32> = z.as_slice().to_vec();

    // Drive the forward loop: every lookup under `Background` also feeds
    // the hot-shape counter, so the retuner measures and publishes this
    // shape. Keep executing through the swap.
    let shared: Arc<_> = Arc::clone(rt.shared());
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    let mut iterations = 0u32;
    while shared.generation() == 0 || iterations < 3 {
        assert!(
            std::time::Instant::now() < deadline,
            "retuner never published (generation still 0 after {iterations} iterations)"
        );
        let blocking = rt
            .lookup(tier, &shape)
            .unwrap_or_else(|| Blocking::default_for(&shape));
        batched_gemm_u8i8(tier, &shape, &blocking, &v, &u, &mut z, &mut pool);
        assert_eq!(z.as_slice(), reference.as_slice(), "iteration {iterations} diverged");
        iterations += 1;
    }
    // A winner was published and consumed by the loop above.
    assert!(shared.generation() >= 1);
    let published = rt.lookup(tier, &shape).expect("winner published");
    assert!(published.validate().is_ok());

    // One more execute with the published winner: still bitwise identical.
    batched_gemm_u8i8(tier, &shape, &published, &v, &u, &mut z, &mut pool);
    assert_eq!(z.as_slice(), reference.as_slice());

    // Shutdown joins the thread; the second stop is a no-op.
    assert!(rt.stop_retuner());
    assert!(!rt.is_retuning());
    assert!(!rt.stop_retuner());
}

#[test]
fn retuner_merges_winners_into_the_wisdom_file() {
    let tier = SimdTier::detect();
    let dir = std::env::temp_dir().join(format!("lowino_retune_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("wisdom.txt");

    // Pre-existing wisdom from "another writer": must survive the merge.
    let other_shape = GemmShape { t: 2, n: 48, c: 16, k: 64 };
    let mut other = Wisdom::new();
    other.insert(tier, &other_shape, Blocking::default_for(&other_shape));
    other.save(&path).unwrap();

    let mut rt = TuneRuntime::new(TunePolicy::Background);
    let mut cfg = RetuneConfig::new(tier);
    cfg.interval = Duration::from_millis(1);
    cfg.repeats = 1;
    cfg.wisdom_path = Some(path.clone());
    assert!(rt.start_retuner(cfg, Wisdom::new()));

    let shape = GemmShape { t: 2, n: 64, c: 16, k: 64 };
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while rt.lookup(tier, &shape).is_none() {
        assert!(std::time::Instant::now() < deadline, "no publication within deadline");
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(rt.stop_retuner());

    let merged = Wisdom::load(&path).unwrap();
    assert!(merged.get(tier, &shape).is_some(), "retuned entry missing from file");
    assert!(merged.get(tier, &other_shape).is_some(), "other writer's entry lost");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn dropping_the_runtime_joins_the_thread() {
    let mut rt = TuneRuntime::new(TunePolicy::Background);
    let mut cfg = RetuneConfig::new(SimdTier::detect());
    cfg.interval = Duration::from_millis(1);
    assert!(rt.start_retuner(cfg, Wisdom::new()));
    // No explicit stop: Drop must signal + join without hanging the test.
    drop(rt);
}

/// Acceptance guard (ISSUE 8): on the three bench GEMM shapes, measuring
/// only the cost model's top-K must reach ≥90% of the full-lattice-sweep
/// winner's throughput. Timing-sensitive, so it is `#[ignore]`d under the
/// plain (debug) test run and executed release-mode by `ci/check.sh`.
#[test]
#[ignore = "timing-sensitive; run release-mode via ci/check.sh"]
fn topk_pruning_keeps_at_least_90_percent_of_full_sweep_throughput() {
    let tier = SimdTier::detect();
    // ResNet-50_b, ResNet-50_c, VGG16_c stage-② shapes (F(2,3), batch 1;
    // n reduced to keep the full sweep affordable in CI).
    let shapes = [
        ("ResNet-50_b", GemmShape { t: 16, n: 196, c: 256, k: 256 }),
        ("ResNet-50_c", GemmShape { t: 16, n: 64, c: 512, k: 512 }),
        ("VGG16_c", GemmShape { t: 16, n: 128, c: 512, k: 512 }),
    ];
    let mut pool = StaticPool::new(2);
    for (name, shape) in shapes {
        let (full_best, full_log) = tune_blocking_full(tier, &shape, &mut pool, 3);
        let (topk_best, topk_log) = tune_blocking(tier, &shape, &mut pool, 3);
        assert!(topk_log.len() <= TUNE_TOP_K);
        assert!(topk_log.len() < full_log.len(), "{name}: pruning pruned nothing");
        if topk_best == full_best {
            println!("{name}: top-K winner is the full-sweep winner ({topk_best:?})");
            continue;
        }
        // The sweeps time each candidate best-of-3 — too noisy on a
        // shared core to decide a 90% bar between two near-equal
        // blockings. Re-measure only the two finalists head-to-head at
        // higher repeats and judge on that.
        let (_, duel) =
            lowino_gemm::measure_candidates(tier, &shape, &[full_best, topk_best], &mut pool, 7);
        let ratio = duel[1].time.as_secs_f64() / duel[0].time.as_secs_f64();
        println!("{name}: full winner {full_best:?}, top-K winner {topk_best:?} ({ratio:.3}x)");
        assert!(
            ratio <= 1.0 / 0.9,
            "{name}: top-K winner reaches only {:.1}% of full-sweep throughput",
            100.0 / ratio
        );
    }
}
