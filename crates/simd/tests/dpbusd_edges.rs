//! Exhaustive edge-operand equivalence for the `vpdpbusd` tiers.
//!
//! The kernel contract is bit-identity across tiers with the scalar model as
//! the executable specification. The cases that historically break emulated
//! implementations are the operand extremes: `a = 255` with `b = ±127/−128`
//! overflows the intermediate of `vpmaddubsw`-based shortcuts, and
//! accumulator overflow separates wrapping (what `vpdpbusd` does — plain
//! two's-complement `i32` adds) from saturating or trapping behaviour. Every
//! `{0, 1, 127, 128, 255} × {−128, −1, 0, 1, 127}` operand pair is checked
//! on every available tier against an independent `i64` model, including
//! accumulator values at both `i32` extremes.

use lowino_simd::{dpbusd, dpbusd_scalar, SimdTier};

/// Unsigned-operand edge values: zero, one, both sides of the sign bit, max.
const A_EDGES: [u8; 5] = [0, 1, 127, 128, 255];
/// Signed-operand edge values.
const B_EDGES: [i8; 5] = [-128, -1, 0, 1, 127];
/// Accumulator starting points, including both overflow boundaries.
const ACC_EDGES: [i32; 5] = [0, 1, -1, i32::MAX, i32::MIN];

/// Independent model: exact `i64` dot product, then two's-complement
/// truncation back to `i32` (what a non-saturating SIMD add produces).
fn model(acc: &[i32; 16], a: &[u8; 64], b: &[i8; 64]) -> [i32; 16] {
    let mut out = [0i32; 16];
    for i in 0..16 {
        let mut s = 0i64;
        for j in 0..4 {
            s += i64::from(a[4 * i + j]) * i64::from(b[4 * i + j]);
        }
        out[i] = (i64::from(acc[i]) + s) as i32;
    }
    out
}

fn check_all_tiers(acc0: [i32; 16], a: [u8; 64], b: [i8; 64], ctx: &str) {
    let want = model(&acc0, &a, &b);
    let mut scalar = acc0;
    dpbusd_scalar(&mut scalar, &a, &b);
    assert_eq!(scalar, want, "scalar vs model: {ctx}");
    for tier in SimdTier::available() {
        let mut acc = acc0;
        dpbusd(tier, &mut acc, &a, &b);
        assert_eq!(acc, want, "tier={tier}: {ctx}");
    }
}

/// Every edge pair as a uniform register fill, against every accumulator
/// edge — 125 operand/accumulator combinations per tier.
#[test]
fn uniform_edge_operands_all_tiers() {
    for av in A_EDGES {
        for bv in B_EDGES {
            for acc0 in ACC_EDGES {
                check_all_tiers(
                    [acc0; 16],
                    [av; 64],
                    [bv; 64],
                    &format!("a={av} b={bv} acc={acc0}"),
                );
            }
        }
    }
}

/// All 25 edge pairs mixed inside a single register, at every rotation, so
/// each pair visits every byte position within a 4-byte lane group.
#[test]
fn mixed_edge_operands_within_register() {
    for rot in 0..25 {
        let mut a = [0u8; 64];
        let mut b = [0i8; 64];
        for i in 0..64 {
            let p = (i + rot) % 25;
            a[i] = A_EDGES[p / 5];
            b[i] = B_EDGES[p % 5];
        }
        for acc0 in ACC_EDGES {
            check_all_tiers([acc0; 16], a, b, &format!("rot={rot} acc={acc0}"));
        }
    }
}

/// The `vpmaddubsw` trap: adjacent-pair intermediate sums exceed `i16`
/// range (`255·127 + 255·127 = 64 770 > 32 767`). An emulation that widens
/// only to `i16` saturates here; all tiers must stay exact.
#[test]
fn adjacent_pair_intermediate_overflow() {
    for bv in [127i8, -128] {
        check_all_tiers([0; 16], [255u8; 64], [bv; 64], &format!("pair-ovf b={bv}"));
    }
}

/// Accumulation chains crossing `i32::MAX` wrap identically on every tier
/// (hardware `vpdpbusd` performs plain wrapping `i32` adds — no saturation).
#[test]
fn long_accumulation_wraps_like_hardware() {
    let a = [255u8; 64];
    let b = [127i8; 64];
    let per_call = 4i64 * 255 * 127; // 129 540 per lane per call
    let calls = 8;
    // Start close enough to the boundary that the chain wraps mid-way.
    let start = i32::MAX - (per_call as i32) * 4;
    let want_i64 = i64::from(start) + per_call * calls as i64;
    assert!(want_i64 > i64::from(i32::MAX), "test must actually wrap");
    let want = want_i64 as i32;
    assert!(want < 0, "wrapped value is negative");

    let mut scalar = [start; 16];
    for _ in 0..calls {
        dpbusd_scalar(&mut scalar, &a, &b);
    }
    assert_eq!(scalar, [want; 16], "scalar wrap");
    for tier in SimdTier::available() {
        let mut acc = [start; 16];
        for _ in 0..calls {
            dpbusd(tier, &mut acc, &a, &b);
        }
        assert_eq!(acc, [want; 16], "tier={tier} wrap");
    }
}

/// Negative-direction wrap: large-magnitude negative products crossing
/// `i32::MIN`.
#[test]
fn long_accumulation_wraps_negative() {
    let a = [255u8; 64];
    let b = [-128i8; 64];
    let per_call = -4i64 * 255 * 128; // −130 560 per lane per call
    let calls = 8;
    let start = i32::MIN - (per_call as i32) * 4; // i32::MIN + 522 240
    let want_i64 = i64::from(start) + per_call * calls as i64;
    assert!(want_i64 < i64::from(i32::MIN), "test must actually wrap");
    let want = want_i64 as i32;
    assert!(want > 0, "wrapped value is positive");

    for tier in SimdTier::available() {
        let mut acc = [start; 16];
        for _ in 0..calls {
            dpbusd(tier, &mut acc, &a, &b);
        }
        assert_eq!(acc, [want; 16], "tier={tier} negative wrap");
    }
}
