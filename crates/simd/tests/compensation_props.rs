//! Property tests for the ±128 unsigned-operand compensation (paper §4.3.3).
//!
//! `vpdpbusd` needs its first operand unsigned, so the quantized activation
//! `q ∈ [−127, 127]` is shipped as `u = q + 128 ∈ [1, 255]` and the GEMM
//! result is corrected by `128·Σw` per accumulator lane (paper Eq. 9):
//!
//! ```text
//! Σ (q_i + 128)·w_i  −  128·Σ w_i  ==  Σ q_i·w_i      (exact in i32)
//! ```
//!
//! Both sides are exercised through the real kernels on every available
//! tier, driven by `lowino-testkit` with its fixed default seed (replayable
//! via `LOWINO_PROP_SEED`).

use lowino_simd::{dpbusd, quantize_f32_lanes_i8, saturate_to_i8, SimdTier};
use lowino_testkit::{prop_assert, property, Rng};

/// Signed reference dot product per accumulator lane, exact in i64.
fn signed_dot(q: &[i8; 64], w: &[i8; 64]) -> [i64; 16] {
    let mut out = [0i64; 16];
    for i in 0..16 {
        for j in 0..4 {
            out[i] += i64::from(q[4 * i + j]) * i64::from(w[4 * i + j]);
        }
    }
    out
}

/// Per-lane weight sums (the `Σw` of the compensation term).
fn weight_sums(w: &[i8; 64]) -> [i64; 16] {
    let mut out = [0i64; 16];
    for i in 0..16 {
        for j in 0..4 {
            out[i] += i64::from(w[4 * i + j]);
        }
    }
    out
}

property! {
    /// The raw integer identity: compensated unsigned dot minus `128·Σw`
    /// equals the signed dot, for arbitrary `q`/`w` bytes on every tier.
    #[cases(64)]
    fn compensation_identity_exact(seed in 0u64..1_000_000) {
        let mut rng = Rng::seed_from_u64(seed);
        let mut q = [0i8; 64];
        let mut w = [0i8; 64];
        for i in 0..64 {
            // Quantized activations stay in the symmetric range [-127, 127].
            q[i] = rng.range_i32(-127, 128) as i8;
            w[i] = rng.i8();
        }
        let mut u = [0u8; 64];
        for i in 0..64 {
            u[i] = (i32::from(q[i]) + 128) as u8;
        }
        let want = signed_dot(&q, &w);
        let sums = weight_sums(&w);
        for tier in SimdTier::available() {
            let mut acc = [0i32; 16];
            dpbusd(tier, &mut acc, &u, &w);
            for lane in 0..16 {
                let got = i64::from(acc[lane]) - 128 * sums[lane];
                prop_assert!(
                    got == want[lane],
                    "tier={tier} lane={lane}: {got} != {}",
                    want[lane]
                );
            }
        }
    }
}

property! {
    /// The same identity through the production quantize kernel: the
    /// `compensate = true` output of `quantize_f32_lanes_i8` feeds
    /// `vpdpbusd`, and subtracting `128·Σw` recovers the signed product of
    /// the plain `S_INT8` quantization — bit-exact, for any input scale.
    #[cases(48)]
    fn compensated_quantize_path_matches_signed(
        seed in 0u64..1_000_000,
        tau in 0.05f32..40.0,
    ) {
        let mut rng = Rng::seed_from_u64(seed);
        let alpha = 127.0 / tau;
        let mut x = [0.0f32; 64];
        for v in x.iter_mut() {
            // Cover in-range and saturating magnitudes.
            *v = rng.f32_range(-1.5 * tau, 1.5 * tau);
        }
        let mut w = [0i8; 64];
        for v in w.iter_mut() {
            *v = rng.i8();
        }
        let mut u = [0u8; 64];
        quantize_f32_lanes_i8(&x, alpha, true, &mut u);
        let mut q = [0i8; 64];
        for i in 0..64 {
            q[i] = saturate_to_i8(x[i] * alpha);
            // The kernel's compensated byte must be exactly q + 128.
            prop_assert!(
                i32::from(u[i]) == i32::from(q[i]) + 128,
                "byte {i}: u={} q={}", u[i], q[i]
            );
        }
        let want = signed_dot(&q, &w);
        let sums = weight_sums(&w);
        for tier in SimdTier::available() {
            let mut acc = [0i32; 16];
            dpbusd(tier, &mut acc, &u, &w);
            for lane in 0..16 {
                let got = i64::from(acc[lane]) - 128 * sums[lane];
                prop_assert!(
                    got == want[lane],
                    "tier={tier} lane={lane}: {got} != {}",
                    want[lane]
                );
            }
        }
    }
}
