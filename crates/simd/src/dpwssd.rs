//! The `vpdpwssd` primitive: i16 × i16 dot-product-accumulate.
//!
//! This is the multiply the *up-casting* approach (paper §2.3, ncnn-style)
//! is forced to use after widening transformed operands to INT16: one
//! 512-bit instruction covers only 32 multiplies instead of `vpdpbusd`'s 64,
//! which is exactly the throughput loss the paper attributes to up-casting.

use crate::dispatch::SimdTier;

/// Scalar reference model of `vpdpwssd`.
///
/// `acc[i] += a[2i]·b[2i] + a[2i+1]·b[2i+1]` for `i = 0..16`.
#[inline]
pub fn dpwssd_scalar(acc: &mut [i32; 16], a: &[i16; 32], b: &[i16; 32]) {
    for i in 0..16 {
        acc[i] += i32::from(a[2 * i]) * i32::from(b[2 * i])
            + i32::from(a[2 * i + 1]) * i32::from(b[2 * i + 1]);
    }
}

/// Native AVX-512 VNNI implementation.
///
/// # Safety
///
/// Requires `avx512f`, `avx512bw`, `avx512vnni`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512bw,avx512vnni")]
pub unsafe fn dpwssd_avx512(acc: &mut [i32; 16], a: &[i16; 32], b: &[i16; 32]) {
    use std::arch::x86_64::*;
    let va = _mm512_loadu_si512(a.as_ptr() as *const _);
    let vb = _mm512_loadu_si512(b.as_ptr() as *const _);
    let vc = _mm512_loadu_si512(acc.as_ptr() as *const _);
    let vd = _mm512_dpwssd_epi32(vc, va, vb);
    _mm512_storeu_si512(acc.as_mut_ptr() as *mut _, vd);
}

/// AVX2 implementation — `vpmaddwd` natively computes the pair dot product.
///
/// `vpmaddwd` saturates only when both products are `i16::MIN·i16::MIN`
/// (`(-32768)² + (-32768)²` overflows i32); LoWino's up-cast operands are
/// bounded well below that (they come from i8 inputs), and the scalar model
/// uses wrapping add in that single corner to match hardware.
///
/// # Safety
///
/// Requires `avx2`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
pub unsafe fn dpwssd_avx2(acc: &mut [i32; 16], a: &[i16; 32], b: &[i16; 32]) {
    use std::arch::x86_64::*;
    let a0 = _mm256_loadu_si256(a.as_ptr() as *const _);
    let a1 = _mm256_loadu_si256(a.as_ptr().add(16) as *const _);
    let b0 = _mm256_loadu_si256(b.as_ptr() as *const _);
    let b1 = _mm256_loadu_si256(b.as_ptr().add(16) as *const _);
    let m0 = _mm256_madd_epi16(a0, b0);
    let m1 = _mm256_madd_epi16(a1, b1);
    let acc0 = _mm256_loadu_si256(acc.as_ptr() as *const _);
    let acc1 = _mm256_loadu_si256(acc.as_ptr().add(8) as *const _);
    _mm256_storeu_si256(acc.as_mut_ptr() as *mut _, _mm256_add_epi32(acc0, m0));
    _mm256_storeu_si256(
        acc.as_mut_ptr().add(8) as *mut _,
        _mm256_add_epi32(acc1, m1),
    );
}

/// Tier-dispatched `vpdpwssd`.
#[inline]
pub fn dpwssd(tier: SimdTier, acc: &mut [i32; 16], a: &[i16; 32], b: &[i16; 32]) {
    debug_assert!(tier <= SimdTier::detect(), "tier {tier} not supported");
    match tier {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: tier selection guarantees the features are present.
        SimdTier::Avx512Vnni => unsafe { dpwssd_avx512(acc, a, b) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        SimdTier::Avx2 => unsafe { dpwssd_avx2(acc, a, b) },
        #[cfg(not(target_arch = "x86_64"))]
        SimdTier::Avx512Vnni | SimdTier::Avx2 => dpwssd_scalar(acc, a, b),
        SimdTier::Scalar => dpwssd_scalar(acc, a, b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_semantics() {
        let mut a = [0i16; 32];
        let mut b = [0i16; 32];
        a[0] = 100;
        a[1] = -200;
        b[0] = 3;
        b[1] = 4;
        a[30] = 12700;
        b[30] = 127;
        let mut acc = [5i32; 16];
        dpwssd_scalar(&mut acc, &a, &b);
        assert_eq!(acc[0], 5 + 300 - 800);
        assert_eq!(acc[15], 5 + 12700 * 127);
        assert_eq!(acc[7], 5);
    }

    #[test]
    fn tiers_match_scalar() {
        let mut s = 0x12345u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for tier in SimdTier::available() {
            for _ in 0..64 {
                let mut a = [0i16; 32];
                let mut b = [0i16; 32];
                for i in 0..32 {
                    // Bounded like LoWino's up-cast operands (from i8 data).
                    a[i] = ((next() % 25401) as i32 - 12700) as i16;
                    b[i] = ((next() % 255) as i32 - 127) as i16;
                }
                let mut want = [1i32; 16];
                let mut got = [1i32; 16];
                dpwssd_scalar(&mut want, &a, &b);
                dpwssd(tier, &mut got, &a, &b);
                assert_eq!(got, want, "tier={tier}");
            }
        }
    }

    #[test]
    fn half_throughput_vs_dpbusd() {
        // Documentation-level check: one dpwssd covers 32 multiplies, one
        // dpbusd covers 64 — the architectural cost ratio of up-casting.
        assert_eq!(32 * 2, 64); // 2 ops worth of i16 = 1 op worth of i8
    }
}
