//! Saturating conversions between FP32 and low-precision integers.
//!
//! Implements the `S_INT8` conversion of paper Eq. 4: round to nearest
//! (ties to even — `cvtps2dq` semantics), then clamp to the symmetric
//! INT8 range `[-127, 127]` implied by Eq. 5's `2^{b-1} - 1` scaling.

/// Symmetric INT8 maximum used throughout (`2^{8-1} - 1`, paper Eq. 5).
pub const QMAX: i32 = 127;

/// Saturating FP32 → INT8 conversion (`S_INT8` in paper Eq. 4).
///
/// Rounds to nearest, ties to even — the rounding of the x86 `cvtps2dq`
/// conversion every production INT8 pipeline uses, and the form that
/// vectorises to `vroundps`. Non-finite inputs saturate (`NaN → 0`, the
/// behaviour of `as` casts).
#[inline]
pub fn saturate_to_i8(x: f32) -> i8 {
    // clamp handles ±∞; NaN propagates and `as` maps it to 0.
    x.round_ties_even().clamp(-(QMAX as f32), QMAX as f32) as i8
}

/// Saturating i32 → INT8 (used when requantising integer intermediates in
/// the down-scaling baseline).
#[inline]
pub fn saturate_i32_to_i8(x: i32) -> i8 {
    x.clamp(-QMAX, QMAX) as i8
}

/// Quantise 64 f32 lanes to i8 with scale `alpha` (`Q(x) = S_INT8(α·x)`,
/// paper Eq. 4), then add the +128 compensation and emit u8 (paper §4.2.1:
/// *"we add 128 to the transformed input after quantization … so as to
/// guarantee all the data can be represented by UINT8"*).
///
/// The whole group is one cache line — the unit the input transform scatters
/// with non-temporal stores.
#[inline]
pub fn quantize_f32_lanes_i8(src: &[f32], alpha: f32, compensate: bool, dst: &mut [u8]) {
    debug_assert_eq!(src.len(), dst.len());
    let offset = if compensate { 128i32 } else { 0 };
    let qmax = QMAX as f32;
    for (d, &s) in dst.iter_mut().zip(src.iter()) {
        // Branchless: vectorises to vcvtdq2ps/vroundps/vmaxps/vminps.
        let q = (s * alpha).round_ties_even().clamp(-qmax, qmax) as i32 + offset;
        *d = q as u8; // q ∈ [-127+128, 127+128] = [1, 255] when compensating
    }
}

/// De-quantise 64 i32 GEMM lanes to f32 with the reciprocal scale
/// (`Q'(x) = α⁻¹·x`, paper Eq. 6). `inv_alpha` is `1/(α_V·α_U)`.
#[inline]
pub fn dequantize_i32_lanes(src: &[i32], inv_alpha: f32, dst: &mut [f32]) {
    debug_assert_eq!(src.len(), dst.len());
    for (d, &s) in dst.iter_mut().zip(src.iter()) {
        *d = s as f32 * inv_alpha;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturation_bounds() {
        assert_eq!(saturate_to_i8(1000.0), 127);
        assert_eq!(saturate_to_i8(-1000.0), -127);
        assert_eq!(saturate_to_i8(127.4), 127);
        assert_eq!(saturate_to_i8(127.6), 127);
        assert_eq!(saturate_to_i8(-127.6), -127);
        assert_eq!(saturate_to_i8(-128.0), -127);
        assert_eq!(saturate_to_i8(f32::INFINITY), 127);
        assert_eq!(saturate_to_i8(f32::NEG_INFINITY), -127);
        assert_eq!(saturate_to_i8(f32::NAN), 0);
    }

    #[test]
    fn rounding_ties_to_even() {
        // cvtps2dq semantics: ties go to the even integer.
        assert_eq!(saturate_to_i8(0.5), 0);
        assert_eq!(saturate_to_i8(-0.5), 0);
        assert_eq!(saturate_to_i8(1.5), 2);
        assert_eq!(saturate_to_i8(2.5), 2);
        assert_eq!(saturate_to_i8(0.51), 1);
        assert_eq!(saturate_to_i8(0.49), 0);
    }

    #[test]
    fn i32_saturation() {
        assert_eq!(saturate_i32_to_i8(i32::MAX), 127);
        assert_eq!(saturate_i32_to_i8(i32::MIN), -127);
        assert_eq!(saturate_i32_to_i8(-5), -5);
        assert_eq!(saturate_i32_to_i8(127), 127);
        assert_eq!(saturate_i32_to_i8(128), 127);
    }

    #[test]
    fn quantize_lanes_with_compensation() {
        let src = [0.0f32, 1.0, -1.0, 0.004, 10.0];
        let mut dst = [0u8; 5];
        // alpha = 127 / 10 -> 10.0 maps to 127.
        quantize_f32_lanes_i8(&src, 12.7, true, &mut dst);
        assert_eq!(dst[0], 128); // 0 + 128
        assert_eq!(dst[1], 141); // round(12.7) = 13, +128
        assert_eq!(dst[2], 115); // -13 + 128
        assert_eq!(dst[3], 128); // rounds to 0
        assert_eq!(dst[4], 255); // saturated 127 + 128 (10*12.7 = 127)
    }

    #[test]
    fn quantize_without_compensation_wraps_to_u8_bits() {
        let src = [-1.0f32];
        let mut dst = [0u8; 1];
        quantize_f32_lanes_i8(&src, 1.0, false, &mut dst);
        // -1 as u8 bit pattern.
        assert_eq!(dst[0] as i8, -1);
    }

    #[test]
    fn dequantize_round_trip_error_bounded() {
        // |dequant(quant(x)) - x| <= 0.5/alpha for in-range x.
        let alpha = 127.0 / 3.0;
        for i in -300..=300 {
            let x = i as f32 / 100.0; // [-3, 3]
            let q = saturate_to_i8(x * alpha);
            let mut back = [0f32];
            dequantize_i32_lanes(&[i32::from(q)], 1.0 / alpha, &mut back);
            assert!(
                (back[0] - x).abs() <= 0.5 / alpha + 1e-6,
                "x={x} back={}",
                back[0]
            );
        }
    }
}
