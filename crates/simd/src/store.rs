//! Non-temporal (streaming) stores and software prefetch.
//!
//! The input transform scatters each quantised tile row as one whole cache
//! line with non-temporal stores (paper §4.2.1), and the GEMM scatters its
//! register tile the same way (§4.3.2), "which write data in memory directly
//! without fetching data to cache first". On non-AVX-512 tiers these degrade
//! to ordinary stores — same semantics, no cache hint.

use crate::dispatch::SimdTier;

/// Store 64 bytes to `dst` with a non-temporal hint when available.
///
/// # Panics
///
/// Panics (debug) if `dst` is not 64-byte aligned — streaming stores require
/// cache-line alignment, which `lowino_tensor::AlignedBuf` guarantees
/// (docs reference; the buffer type lives in `lowino-tensor`).
#[inline]
pub fn stream_store_u8_64(tier: SimdTier, dst: &mut [u8], src: &[u8; 64]) {
    debug_assert!(dst.len() >= 64);
    debug_assert!(
        (dst.as_ptr() as usize).is_multiple_of(64),
        "stream_store_u8_64: dst not 64-byte aligned"
    );
    #[cfg(target_arch = "x86_64")]
    if tier == SimdTier::Avx512Vnni && (dst.as_ptr() as usize).is_multiple_of(64) {
        // SAFETY: avx512f implied by the tier; dst is valid for 64 bytes and
        // 64-byte aligned (checked above).
        unsafe {
            use std::arch::x86_64::*;
            let v = _mm512_loadu_si512(src.as_ptr() as *const _);
            _mm512_stream_si512(dst.as_mut_ptr() as *mut _, v);
        }
        return;
    }
    let _ = tier;
    dst[..64].copy_from_slice(src);
}

/// Store 16 `i32` lanes (one ZMM) with a non-temporal hint when available.
///
/// # Panics
///
/// Panics (debug) if `dst` is not 64-byte aligned, like
/// [`stream_store_u8_64`].
#[inline]
pub fn stream_store_i32_16(tier: SimdTier, dst: &mut [i32], src: &[i32; 16]) {
    debug_assert!(dst.len() >= 16);
    debug_assert!(
        (dst.as_ptr() as usize).is_multiple_of(64),
        "stream_store_i32_16: dst not 64-byte aligned"
    );
    #[cfg(target_arch = "x86_64")]
    if tier == SimdTier::Avx512Vnni && (dst.as_ptr() as usize).is_multiple_of(64) {
        // SAFETY: as in `stream_store_u8_64`.
        unsafe {
            use std::arch::x86_64::*;
            let v = _mm512_loadu_si512(src.as_ptr() as *const _);
            _mm512_stream_si512(dst.as_mut_ptr() as *mut _, v);
        }
        return;
    }
    let _ = tier;
    dst[..16].copy_from_slice(src);
}

/// Issue a fence making prior streaming stores visible to subsequent loads.
///
/// Must be called once after a batch of streaming stores, before another
/// thread (or stage) reads the data.
#[inline]
pub fn stream_fence() {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: `_mm_sfence` has no preconditions.
    unsafe {
        std::arch::x86_64::_mm_sfence()
    };
}

/// Software prefetch of the cache line containing `ptr` into L2 (the
/// `prefetch(next_v)` of paper Fig. 7).
#[inline]
pub fn prefetch_read<T>(ptr: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch is a hint; it cannot fault even on invalid addresses.
    unsafe {
        std::arch::x86_64::_mm_prefetch(ptr as *const i8, std::arch::x86_64::_MM_HINT_T1)
    };
    #[cfg(not(target_arch = "x86_64"))]
    let _ = ptr;
}

/// Cap on the rows hinted per [`prefetch_panel_rows`] call (64 lines =
/// 4 KiB) so a pathological row count cannot flood the load ports.
pub const MAX_PREFETCH_ROWS: usize = 64;

/// Tier-gated prefetch of a strided panel stream: hints the first cache
/// line of each of `rows` rows starting at `ptr`, `stride` bytes apart.
///
/// The pipelined GEMM driver uses this to prime the `VPanel`/`UPanel`
/// source streams of the *next* cache block while the micro-kernel is
/// still consuming the current one. The Scalar tier is a no-op — the
/// portable reference path models hardware without useful software
/// prefetch, and keeping it hint-free preserves its role as the plain
/// semantic baseline. Like [`prefetch_read`] this is purely a hint: it
/// never faults, even on dangling or null addresses.
#[inline]
pub fn prefetch_panel_rows(tier: SimdTier, ptr: *const u8, stride: usize, rows: usize) {
    if tier == SimdTier::Scalar {
        return;
    }
    #[cfg(target_arch = "x86_64")]
    for r in 0..rows.min(MAX_PREFETCH_ROWS) {
        // SAFETY: prefetch is a hint; it cannot fault even on invalid
        // addresses.
        unsafe {
            std::arch::x86_64::_mm_prefetch(
                ptr.wrapping_add(r.wrapping_mul(stride)) as *const i8,
                std::arch::x86_64::_MM_HINT_T1,
            );
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = (ptr, stride, rows);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_store_u8_round_trip_aligned() {
        // 64-byte aligned destination via Vec with manual alignment search.
        let mut backing = vec![0u8; 256];
        let off = backing.as_ptr().align_offset(64);
        let src: [u8; 64] = core::array::from_fn(|i| i as u8);
        for tier in SimdTier::available() {
            backing.fill(0);
            stream_store_u8_64(tier, &mut backing[off..off + 64], &src);
            stream_fence();
            assert_eq!(&backing[off..off + 64], &src, "tier={tier}");
        }
    }

    /// Misaligned destinations are a programming error: a debug panic in
    /// debug builds, a silent (correct but slow) cached-store fallback in
    /// release builds.
    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "not 64-byte aligned"))]
    fn stream_store_unaligned_panics_in_debug_falls_back_in_release() {
        let mut backing = vec![0u8; 256];
        let off = backing.as_ptr().align_offset(64) + 1; // deliberately unaligned
        let src = [7u8; 64];
        stream_store_u8_64(SimdTier::detect(), &mut backing[off..off + 64], &src);
        assert_eq!(&backing[off..off + 64], &src);
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "not 64-byte aligned"))]
    fn stream_store_i32_unaligned_panics_in_debug_falls_back_in_release() {
        let mut backing = vec![0i32; 64];
        let off = (backing.as_ptr() as usize).wrapping_neg() % 64 / 4 + 1; // unaligned
        let src = [3i32; 16];
        stream_store_i32_16(SimdTier::detect(), &mut backing[off..off + 16], &src);
        assert_eq!(&backing[off..off + 16], &src);
    }

    #[test]
    fn stream_store_i32_round_trip() {
        let mut backing = vec![0i32; 64];
        let off = (backing.as_ptr() as usize).wrapping_neg() % 64 / 4;
        let src: [i32; 16] = core::array::from_fn(|i| i as i32 - 8);
        for tier in SimdTier::available() {
            backing.fill(0);
            stream_store_i32_16(tier, &mut backing[off..off + 16], &src);
            stream_fence();
            assert_eq!(&backing[off..off + 16], &src, "tier={tier}");
        }
    }

    #[test]
    fn prefetch_never_faults() {
        let v = [1u8; 8];
        prefetch_read(v.as_ptr());
        prefetch_read(core::ptr::null::<u8>()); // hint only, must not fault
    }

    #[test]
    fn prefetch_panel_rows_never_faults() {
        let v = [1u8; 256];
        for tier in SimdTier::available() {
            prefetch_panel_rows(tier, v.as_ptr(), 64, 4);
            // Hints only: dangling stride-walks and absurd row counts are
            // fine (the cap bounds the loop), as is a null base.
            prefetch_panel_rows(tier, v.as_ptr(), usize::MAX / 2, usize::MAX);
            prefetch_panel_rows(tier, core::ptr::null(), 64, 8);
            prefetch_panel_rows(tier, v.as_ptr(), 0, 0);
        }
    }
}
