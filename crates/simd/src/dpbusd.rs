//! The `vpdpbusd` primitive (paper Fig. 1): u8 × i8 dot-product-accumulate.
//!
//! One call processes one 512-bit register worth of operands: 64 unsigned
//! bytes, 64 signed bytes, 16 `i32` accumulator lanes. Lane `i` accumulates
//! the dot product of bytes `4i..4i+4`.
//!
//! All three tiers produce bit-identical results; the scalar tier is the
//! executable specification.

use crate::dispatch::SimdTier;

/// Scalar reference model of `vpdpbusd` — the executable specification.
///
/// `acc[i] += Σ_{j<4} a[4i+j]·b[4i+j]`. The per-call dot product is exact in
/// `i32` (maximum magnitude `4·255·128 = 130 560`), and the accumulator add
/// wraps on overflow — `vpdpbusd` accumulates with two's-complement `i32`
/// adds and does not saturate, so long accumulation chains wrap identically
/// on every tier.
#[inline]
pub fn dpbusd_scalar(acc: &mut [i32; 16], a: &[u8; 64], b: &[i8; 64]) {
    for i in 0..16 {
        let mut s = 0i32;
        for j in 0..4 {
            s += i32::from(a[4 * i + j]) * i32::from(b[4 * i + j]);
        }
        acc[i] = acc[i].wrapping_add(s);
    }
}

/// Native AVX-512 VNNI implementation.
///
/// # Safety
///
/// The caller must ensure `avx512f`, `avx512bw` and `avx512vnni` are
/// available (use [`SimdTier::detect`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512bw,avx512vnni")]
pub unsafe fn dpbusd_avx512(acc: &mut [i32; 16], a: &[u8; 64], b: &[i8; 64]) {
    use std::arch::x86_64::*;
    let va = _mm512_loadu_si512(a.as_ptr() as *const _);
    let vb = _mm512_loadu_si512(b.as_ptr() as *const _);
    let vc = _mm512_loadu_si512(acc.as_ptr() as *const _);
    let vd = _mm512_dpbusd_epi32(vc, va, vb);
    _mm512_storeu_si512(acc.as_mut_ptr() as *mut _, vd);
}

/// Exact AVX2 emulation of `vpdpbusd`.
///
/// Widens u8→i16 (zero-extend) and i8→i16 (sign-extend) before `vpmaddwd`,
/// so — unlike the common `vpmaddubsw` shortcut — no intermediate INT16
/// saturation can occur and the result is bit-identical to VNNI.
///
/// # Safety
///
/// The caller must ensure `avx2` is available.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
pub unsafe fn dpbusd_avx2(acc: &mut [i32; 16], a: &[u8; 64], b: &[i8; 64]) {
    use std::arch::x86_64::*;

    // Processes 32 bytes (output lanes `8h..8h+8`) per iteration.
    #[inline]
    unsafe fn half(a: *const u8, b: *const i8) -> __m256i {
        // Chunk 0: bytes 0..16 -> lanes 0..4; chunk 1: bytes 16..32 -> 4..8.
        let a0 = _mm256_cvtepu8_epi16(_mm_loadu_si128(a as *const _));
        let a1 = _mm256_cvtepu8_epi16(_mm_loadu_si128(a.add(16) as *const _));
        let b0 = _mm256_cvtepi8_epi16(_mm_loadu_si128(b as *const _));
        let b1 = _mm256_cvtepi8_epi16(_mm_loadu_si128(b.add(16) as *const _));
        // madd: i32 lane j = a[2j]·b[2j] + a[2j+1]·b[2j+1] (exact, widened).
        let m0 = _mm256_madd_epi16(a0, b0);
        let m1 = _mm256_madd_epi16(a1, b1);
        // hadd interleaves 128-bit lanes:
        //   [l0, l1, l4, l5 | l2, l3, l6, l7]  (li = output lane i)
        let h = _mm256_hadd_epi32(m0, m1);
        // Restore natural order.
        let idx = _mm256_setr_epi32(0, 1, 4, 5, 2, 3, 6, 7);
        _mm256_permutevar8x32_epi32(h, idx)
    }

    let lo = half(a.as_ptr(), b.as_ptr());
    let hi = half(a.as_ptr().add(32), b.as_ptr().add(32));
    let acc_lo = _mm256_loadu_si256(acc.as_ptr() as *const _);
    let acc_hi = _mm256_loadu_si256(acc.as_ptr().add(8) as *const _);
    _mm256_storeu_si256(acc.as_mut_ptr() as *mut _, _mm256_add_epi32(acc_lo, lo));
    _mm256_storeu_si256(
        acc.as_mut_ptr().add(8) as *mut _,
        _mm256_add_epi32(acc_hi, hi),
    );
}

/// Tier-dispatched `vpdpbusd`.
///
/// Safe wrapper: passing a tier the host does not support is a programming
/// error and will panic in debug builds; use [`SimdTier::detect`] or
/// [`SimdTier::available`] to obtain valid tiers.
#[inline]
pub fn dpbusd(tier: SimdTier, acc: &mut [i32; 16], a: &[u8; 64], b: &[i8; 64]) {
    debug_assert!(tier <= SimdTier::detect(), "tier {tier} not supported");
    match tier {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: tier selection guarantees the features are present.
        SimdTier::Avx512Vnni => unsafe { dpbusd_avx512(acc, a, b) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        SimdTier::Avx2 => unsafe { dpbusd_avx2(acc, a, b) },
        #[cfg(not(target_arch = "x86_64"))]
        SimdTier::Avx512Vnni | SimdTier::Avx2 => dpbusd_scalar(acc, a, b),
        SimdTier::Scalar => dpbusd_scalar(acc, a, b),
    }
}

/// Accumulate a whole row of `len` 64-byte groups: a GEMV-style helper used
/// by the fallback GEMM path and by tests.
///
/// `acc` has 16 lanes per group? No — this variant reduces across groups
/// into a single 16-lane accumulator, i.e. it computes 16 independent
/// strided dot products of length `4·len`.
#[inline]
pub fn dpbusd_rows(tier: SimdTier, acc: &mut [i32; 16], a: &[u8], b: &[i8]) {
    assert_eq!(a.len(), b.len());
    assert_eq!(a.len() % 64, 0);
    for (ca, cb) in a.chunks_exact(64).zip(b.chunks_exact(64)) {
        let ca: &[u8; 64] = ca.try_into().expect("chunk");
        let cb: &[i8; 64] = cb.try_into().expect("chunk");
        dpbusd(tier, acc, ca, cb);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern(seed: u64) -> ([u8; 64], [i8; 64]) {
        // Small xorshift so tests are deterministic without rand.
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let mut a = [0u8; 64];
        let mut b = [0i8; 64];
        for i in 0..64 {
            a[i] = (next() & 0xFF) as u8;
            b[i] = (next() & 0xFF) as u8 as i8;
        }
        (a, b)
    }

    #[test]
    fn scalar_matches_fig1_semantics() {
        // Fig. 1: D_i = A[4i..4i+4]·B[4i..4i+4] + C_i.
        let mut a = [0u8; 64];
        let mut b = [0i8; 64];
        // Lane 0: 1·10 + 2·20 + 3·(-30) + 4·40 = 120.
        a[0..4].copy_from_slice(&[1, 2, 3, 4]);
        b[0..4].copy_from_slice(&[10, 20, -30, 40]);
        // Lane 15: 255 · -128 · 4 = -130560 (extreme magnitudes, no overflow).
        a[60..64].copy_from_slice(&[255; 4]);
        b[60..64].copy_from_slice(&[-128; 4]);
        let mut acc = [7i32; 16];
        dpbusd_scalar(&mut acc, &a, &b);
        assert_eq!(acc[0], 7 + 120);
        assert_eq!(acc[1], 7);
        assert_eq!(acc[15], 7 - 130_560);
    }

    #[test]
    fn all_tiers_bit_identical() {
        for tier in SimdTier::available() {
            for seed in 0..64u64 {
                let (a, b) = pattern(seed);
                let mut want = [seed as i32; 16];
                let mut got = [seed as i32; 16];
                dpbusd_scalar(&mut want, &a, &b);
                dpbusd(tier, &mut got, &a, &b);
                assert_eq!(got, want, "tier={tier} seed={seed}");
            }
        }
    }

    #[test]
    fn extreme_operands_no_saturation() {
        // This is where vpmaddubsw-based emulations break: pair sums exceed
        // i16::MAX. Our AVX2 tier must stay exact.
        let a = [255u8; 64];
        let b = [127i8; 64];
        for tier in SimdTier::available() {
            let mut acc = [0i32; 16];
            dpbusd(tier, &mut acc, &a, &b);
            assert_eq!(acc, [4 * 255 * 127; 16], "tier={tier}");
        }
        let b = [-128i8; 64];
        for tier in SimdTier::available() {
            let mut acc = [0i32; 16];
            dpbusd(tier, &mut acc, &a, &b);
            assert_eq!(acc, [4 * 255 * -128; 16], "tier={tier}");
        }
    }

    #[test]
    fn accumulation_chains() {
        let (a, b) = pattern(42);
        for tier in SimdTier::available() {
            let mut acc = [0i32; 16];
            for _ in 0..100 {
                dpbusd(tier, &mut acc, &a, &b);
            }
            let mut want = [0i32; 16];
            for _ in 0..100 {
                dpbusd_scalar(&mut want, &a, &b);
            }
            assert_eq!(acc, want, "tier={tier}");
        }
    }

    #[test]
    fn rows_helper_reduces_across_groups() {
        let mut a = vec![0u8; 256];
        let mut b = vec![0i8; 256];
        for i in 0..256 {
            a[i] = (i % 251) as u8;
            b[i] = ((i * 7) % 255) as u8 as i8;
        }
        for tier in SimdTier::available() {
            let mut acc = [0i32; 16];
            dpbusd_rows(tier, &mut acc, &a, &b);
            let mut want = [0i32; 16];
            for g in 0..4 {
                let ca: &[u8; 64] = a[g * 64..][..64].try_into().unwrap();
                let cb: &[i8; 64] = b[g * 64..][..64].try_into().unwrap();
                dpbusd_scalar(&mut want, ca, cb);
            }
            assert_eq!(acc, want, "tier={tier}");
        }
    }
}
