//! # lowino-simd
//!
//! The low-precision computation substrate of LoWino: a faithful
//! implementation of the VNNI `vpdpbusd` semantics (paper Fig. 1) and its
//! INT16 sibling `vpdpwssd`, together with the saturating conversions,
//! streaming stores and prefetch hints the kernels rely on.
//!
//! ## Tiers
//!
//! Every operation is provided at three tiers, selected once at runtime
//! ([`SimdTier::detect`]):
//!
//! 1. **Avx512Vnni** — the real instructions (`_mm512_dpbusd_epi32`, …),
//!    exactly what the paper targets on Cascade Lake;
//! 2. **Avx2** — an exact emulation using 256-bit widening multiplies
//!    (`vpmovzxbw`/`vpmovsxbw` + `vpmaddwd` + horizontal pair adds). Unlike
//!    the folklore `maddubs` emulation this tier is *bit-exact* with VNNI
//!    (no intermediate INT16 saturation);
//! 3. **Scalar** — a portable reference model; the other tiers are
//!    property-tested against it.
//!
//! The core primitive operates on one 512-bit register worth of data:
//! 64 unsigned bytes `a`, 64 signed bytes `b`, accumulating 16 `i32` lanes:
//!
//! ```text
//! acc[i] += Σ_{j=0..3} a[4i+j] · b[4i+j]      (i = 0..15)
//! ```
//!
//! which is precisely the `vpdpbusd` dataflow of paper Fig. 1.

pub mod cast;
pub mod dispatch;
pub mod dpbusd;
pub mod dpwssd;
pub mod store;
pub mod vecf32;

pub use cast::{dequantize_i32_lanes, quantize_f32_lanes_i8, saturate_i32_to_i8, saturate_to_i8};
pub use dispatch::SimdTier;
pub use dpbusd::{dpbusd, dpbusd_scalar};
pub use dpwssd::{dpwssd, dpwssd_scalar};
pub use store::{prefetch_panel_rows, prefetch_read, stream_store_i32_16, stream_store_u8_64};
pub use vecf32::{dequantize_lanes, quantize_lanes, requantize_i32_lanes, F32Vector, F32x1, VecTier};

#[cfg(target_arch = "x86_64")]
pub use vecf32::{F32x16, F32x8};

/// Lanes of `i32` in a 512-bit register.
pub const I32_LANES: usize = 16;
/// Bytes in a 512-bit register.
pub const BYTES: usize = 64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_dpbusd_via_dispatch() {
        let a = [2u8; 64];
        let b = [3i8; 64];
        let mut acc = [1i32; 16];
        dpbusd(SimdTier::detect(), &mut acc, &a, &b);
        assert_eq!(acc, [25i32; 16]); // 1 + 4·(2·3)
    }
}
