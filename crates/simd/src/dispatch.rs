//! Runtime CPU-feature detection and tier selection.

use std::sync::OnceLock;

/// The instruction tier a kernel will execute on.
///
/// Ordered from most to least capable. [`SimdTier::detect`] picks the best
/// tier the host supports; every tier computes bit-identical results (the
/// AVX2 tier is an exact emulation, see crate docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SimdTier {
    /// Portable scalar reference model.
    Scalar,
    /// 256-bit exact emulation of the VNNI dataflow.
    Avx2,
    /// Native AVX-512 VNNI (`vpdpbusd` / `vpdpwssd`).
    Avx512Vnni,
}

impl SimdTier {
    /// Detect the best tier available on this CPU (cached after first call).
    ///
    /// Honours the `LOWINO_FORCE_TIER` environment variable
    /// (`scalar` / `avx2` / `avx512vnni`) so CI can exercise the non-native
    /// tiers; forcing a tier the host cannot execute panics rather than
    /// silently falling back.
    pub fn detect() -> Self {
        static TIER: OnceLock<SimdTier> = OnceLock::new();
        *TIER.get_or_init(Self::detect_uncached)
    }

    /// Detection without the cache — used by tests and the ablation bench.
    /// Applies the same `LOWINO_FORCE_TIER` override as [`Self::detect`].
    ///
    /// Carries the `tier/detect` fault site: a triggered fault degrades
    /// detection to [`SimdTier::Scalar`] — the tier that is always
    /// executable — modelling a host whose feature probe fails.
    pub fn detect_uncached() -> Self {
        if lowino_testkit::faults::TIER_DETECT.fire() {
            return SimdTier::Scalar;
        }
        let native = Self::detect_native();
        if let Ok(forced) = std::env::var("LOWINO_FORCE_TIER") {
            let tier = Self::from_name(&forced).unwrap_or_else(|| {
                panic!(
                    "LOWINO_FORCE_TIER={forced:?} is not a tier \
                     (expected scalar, avx2 or avx512vnni)"
                )
            });
            assert!(
                tier <= native,
                "LOWINO_FORCE_TIER={forced:?} but this host only supports {native}"
            );
            return tier;
        }
        native
    }

    /// Raw CPU-feature probe, ignoring any override.
    fn detect_native() -> Self {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx512vnni")
                && std::arch::is_x86_feature_detected!("avx512f")
                && std::arch::is_x86_feature_detected!("avx512bw")
            {
                return SimdTier::Avx512Vnni;
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                return SimdTier::Avx2;
            }
        }
        SimdTier::Scalar
    }

    /// Parse a tier name as accepted by `LOWINO_FORCE_TIER`. Accepts the
    /// [`Self::name`] spellings plus `avx512vnni` (no hyphen), case-insensitive.
    pub fn from_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "scalar" => Some(SimdTier::Scalar),
            "avx2" => Some(SimdTier::Avx2),
            "avx512vnni" | "avx512-vnni" => Some(SimdTier::Avx512Vnni),
            _ => None,
        }
    }

    /// All tiers available on the current host, best first. Useful for
    /// equivalence tests and the SIMD-tier ablation bench.
    pub fn available() -> Vec<SimdTier> {
        let best = Self::detect();
        let mut v = Vec::with_capacity(3);
        if best >= SimdTier::Avx512Vnni {
            v.push(SimdTier::Avx512Vnni);
        }
        if best >= SimdTier::Avx2 {
            v.push(SimdTier::Avx2);
        }
        v.push(SimdTier::Scalar);
        v
    }

    /// Human-readable name used in bench output.
    pub fn name(self) -> &'static str {
        match self {
            SimdTier::Avx512Vnni => "avx512-vnni",
            SimdTier::Avx2 => "avx2",
            SimdTier::Scalar => "scalar",
        }
    }
}

impl std::fmt::Display for SimdTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialises the tests that probe the process-global `tier/detect`
    /// fault site, so an armed fault is consumed by the test that armed it.
    static DETECT_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn detect_is_stable() {
        let _guard = DETECT_LOCK.lock().unwrap();
        assert_eq!(SimdTier::detect(), SimdTier::detect());
        assert_eq!(SimdTier::detect(), SimdTier::detect_uncached());
    }

    #[test]
    fn detect_fault_degrades_to_scalar() {
        use lowino_testkit::faults::TIER_DETECT;
        let _guard = DETECT_LOCK.lock().unwrap();
        // Populate the `detect()` cache before arming, so a concurrent
        // first-call cannot consume the fault and cache Scalar process-wide.
        let native = SimdTier::detect();
        TIER_DETECT.arm();
        assert_eq!(SimdTier::detect_uncached(), SimdTier::Scalar);
        assert!(!TIER_DETECT.is_armed(), "fault is one-shot");
        // Recovery: the next probe detects normally again.
        assert_eq!(SimdTier::detect_uncached(), native);
    }

    #[test]
    fn available_always_contains_scalar_last() {
        let tiers = SimdTier::available();
        assert_eq!(*tiers.last().unwrap(), SimdTier::Scalar);
        // Best-first ordering.
        for w in tiers.windows(2) {
            assert!(w[0] > w[1]);
        }
    }

    #[test]
    fn names() {
        assert_eq!(SimdTier::Scalar.name(), "scalar");
        assert_eq!(SimdTier::Avx512Vnni.to_string(), "avx512-vnni");
    }

    #[test]
    fn from_name_round_trips_and_rejects_garbage() {
        for tier in SimdTier::available() {
            assert_eq!(SimdTier::from_name(tier.name()), Some(tier));
        }
        assert_eq!(SimdTier::from_name("avx512vnni"), Some(SimdTier::Avx512Vnni));
        assert_eq!(SimdTier::from_name("AVX2"), Some(SimdTier::Avx2));
        assert_eq!(SimdTier::from_name("sse2"), None);
        assert_eq!(SimdTier::from_name(""), None);
    }
}
