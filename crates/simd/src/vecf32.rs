//! Explicit three-tier `f32` SIMD vectors — the execution substrate of the
//! compiled transform tapes (paper §4.2.4) and the fused
//! quantize/dequantize epilogues.
//!
//! Mirrors the `dpbusd` tier design: one portable scalar model
//! ([`F32x1`]), an AVX2 `f32x8` tier ([`F32x8`]) and an AVX-512 `f32x16`
//! tier ([`F32x16`]), all **bitwise identical** for finite inputs. The f32
//! tiers need only `avx2` / `avx512f` (not VNNI), so [`VecTier`] carries
//! its own capability axis: [`VecTier::for_simd`] maps the kernel
//! [`SimdTier`] onto it (the production path — forcing a tier via
//! `LOWINO_FORCE_TIER` therefore forces the f32 vectors too), while
//! [`VecTier::available`] reports what the host can *execute*, so
//! equivalence tests cover the `f32x16` code even on AVX-512 hosts
//! without VNNI.
//!
//! ## Bitwise-equivalence contract
//!
//! Every operation rounds exactly like its scalar spelling:
//!
//! * `mul`/`add` are plain IEEE single ops (never contracted into FMA —
//!   the interpreted codelet executor rounds after every multiply, and the
//!   tapes must reproduce it bit-for-bit);
//! * [`F32Vector::load_i32_scaled`] is `cvtdq2ps` + `mulps`, identical to
//!   `x as f32 * scale`;
//! * [`F32Vector::quantize_u8`] clamps **before** the rounding convert
//!   (`cvtps2dq`, ties-to-even) where the scalar
//!   [`quantize_f32_lanes_i8`](crate::quantize_f32_lanes_i8) rounds first
//!   and then clamps — the two orders agree for every finite input because
//!   rounding can only cross the clamp boundary onto the boundary itself.
//!   Non-finite lanes are the one place the tiers may differ (`NaN`
//!   saturates instead of mapping to 0); the transform pipeline never
//!   produces them from finite activations.

use crate::cast::QMAX;
use crate::dispatch::SimdTier;

/// The f32 vector width a tape executes with. Ordered narrow → wide so
/// `Ord` means "capability", exactly like [`SimdTier`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum VecTier {
    /// Portable scalar reference model (one lane per step).
    Scalar,
    /// AVX2 `f32x8` (`__m256`).
    F32x8,
    /// AVX-512 `f32x16` (`__m512`, requires `avx512f` only).
    F32x16,
}

impl VecTier {
    /// The vector tier the given kernel tier executes with. Strictly
    /// tier-keyed so `LOWINO_FORCE_TIER=scalar` forces scalar transforms
    /// and per-tier CI runs exercise exactly one width.
    pub fn for_simd(tier: SimdTier) -> Self {
        match tier {
            SimdTier::Avx512Vnni => VecTier::F32x16,
            SimdTier::Avx2 => VecTier::F32x8,
            SimdTier::Scalar => VecTier::Scalar,
        }
    }

    /// Best width the host can execute (independent of VNNI, so `f32x16`
    /// is testable on AVX-512 hosts without VNNI).
    pub fn detect() -> Self {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx512f") {
                return VecTier::F32x16;
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                return VecTier::F32x8;
            }
        }
        VecTier::Scalar
    }

    /// All widths executable on this host, widest first, scalar always
    /// last — the iteration set of the equivalence tests.
    pub fn available() -> Vec<VecTier> {
        let best = Self::detect();
        let mut v = Vec::with_capacity(3);
        if best >= VecTier::F32x16 {
            v.push(VecTier::F32x16);
        }
        if best >= VecTier::F32x8 {
            v.push(VecTier::F32x8);
        }
        v.push(VecTier::Scalar);
        v
    }

    /// Lanes per vector.
    pub fn width(self) -> usize {
        match self {
            VecTier::F32x16 => 16,
            VecTier::F32x8 => 8,
            VecTier::Scalar => 1,
        }
    }

    /// Human-readable name used in bench output.
    pub fn name(self) -> &'static str {
        match self {
            VecTier::F32x16 => "f32x16",
            VecTier::F32x8 => "f32x8",
            VecTier::Scalar => "scalar",
        }
    }
}

impl std::fmt::Display for VecTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One f32 SIMD register of [`Self::WIDTH`] lanes.
///
/// # Safety
///
/// Every method requires the implementing tier's CPU features to be
/// available; callers must dispatch through a `#[target_feature]` wrapper
/// selected by [`VecTier`] (or use [`F32x1`], which has no requirement).
pub trait F32Vector: Copy {
    /// Lanes per register.
    const WIDTH: usize;

    /// Unaligned load of `WIDTH` lanes.
    ///
    /// # Safety
    ///
    /// `ptr` must be valid for `WIDTH` reads; tier features required.
    unsafe fn load(ptr: *const f32) -> Self;

    /// Unaligned store of `WIDTH` lanes.
    ///
    /// # Safety
    ///
    /// `ptr` must be valid for `WIDTH` writes; tier features required.
    unsafe fn store(self, ptr: *mut f32);

    /// Load `WIDTH` `i32` lanes, convert (`cvtdq2ps`: round-nearest-even,
    /// same as `as f32`) and multiply by `scale` — the fused dequantize
    /// load of paper Eq. 6.
    ///
    /// # Safety
    ///
    /// `ptr` must be valid for `WIDTH` reads; tier features required.
    unsafe fn load_i32_scaled(ptr: *const i32, scale: f32) -> Self;

    /// Broadcast `x` to every lane.
    ///
    /// # Safety
    ///
    /// Tier features required.
    unsafe fn splat(x: f32) -> Self;

    /// All-zero register.
    ///
    /// # Safety
    ///
    /// Tier features required.
    unsafe fn zero() -> Self;

    /// Lanewise IEEE multiply (no FMA contraction).
    ///
    /// # Safety
    ///
    /// Tier features required.
    unsafe fn mul(self, rhs: Self) -> Self;

    /// Lanewise IEEE add.
    ///
    /// # Safety
    ///
    /// Tier features required.
    unsafe fn add(self, rhs: Self) -> Self;

    /// Lanewise maximum with x86 `maxps` semantics: `self > rhs ? self :
    /// rhs` per lane. With `rhs = zero()` this is exactly the ReLU the
    /// scalar model spells `if x > 0.0 { x } else { 0.0 }` — `-0.0` maps
    /// to `+0.0` and `NaN` maps to `rhs`, on every tier, which is what
    /// keeps the fused ReLU epilogue bitwise identical to the f32
    /// reference path's `v.max(0.0)`.
    ///
    /// # Safety
    ///
    /// Tier features required.
    unsafe fn max(self, rhs: Self) -> Self;

    /// Fused quantize epilogue (paper Eq. 4 + the §4.2.1 +128
    /// compensation): per lane `x`, compute
    /// `clamp(round_ties_even(x·alpha), ±127) + offset` and store the low
    /// byte of each result as `u8` — `WIDTH` bytes at `dst`. Matches
    /// [`quantize_f32_lanes_i8`](crate::quantize_f32_lanes_i8) bitwise for
    /// finite `x·alpha`.
    ///
    /// # Safety
    ///
    /// `dst` must be valid for `WIDTH` byte writes; tier features required.
    unsafe fn quantize_u8(self, alpha: f32, offset: i32, dst: *mut u8);
}

/// Scalar one-lane reference model — the executable specification the
/// vector tiers are property-tested against.
#[derive(Debug, Clone, Copy)]
pub struct F32x1(pub f32);

impl F32Vector for F32x1 {
    const WIDTH: usize = 1;

    #[inline(always)]
    unsafe fn load(ptr: *const f32) -> Self {
        F32x1(*ptr)
    }

    #[inline(always)]
    unsafe fn store(self, ptr: *mut f32) {
        *ptr = self.0;
    }

    #[inline(always)]
    unsafe fn load_i32_scaled(ptr: *const i32, scale: f32) -> Self {
        F32x1(*ptr as f32 * scale)
    }

    #[inline(always)]
    unsafe fn splat(x: f32) -> Self {
        F32x1(x)
    }

    #[inline(always)]
    unsafe fn zero() -> Self {
        F32x1(0.0)
    }

    #[inline(always)]
    unsafe fn mul(self, rhs: Self) -> Self {
        F32x1(self.0 * rhs.0)
    }

    #[inline(always)]
    unsafe fn add(self, rhs: Self) -> Self {
        F32x1(self.0 + rhs.0)
    }

    #[inline(always)]
    unsafe fn max(self, rhs: Self) -> Self {
        // `maxps` semantics, not `f32::max`: second operand wins on NaN,
        // and `max(-0.0, +0.0)` is `+0.0` because `-0.0 > 0.0` is false.
        F32x1(if self.0 > rhs.0 { self.0 } else { rhs.0 })
    }

    #[inline(always)]
    unsafe fn quantize_u8(self, alpha: f32, offset: i32, dst: *mut u8) {
        // Exactly the scalar `quantize_f32_lanes_i8` body for one lane.
        let q = (self.0 * alpha)
            .round_ties_even()
            .clamp(-(QMAX as f32), QMAX as f32) as i32
            + offset;
        *dst = q as u8;
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{F32Vector, QMAX};
    use core::arch::x86_64::*;

    /// AVX2 `f32x8` tier.
    #[derive(Clone, Copy)]
    pub struct F32x8(__m256);

    impl F32Vector for F32x8 {
        const WIDTH: usize = 8;

        #[inline(always)]
        unsafe fn load(ptr: *const f32) -> Self {
            F32x8(_mm256_loadu_ps(ptr))
        }

        #[inline(always)]
        unsafe fn store(self, ptr: *mut f32) {
            _mm256_storeu_ps(ptr, self.0);
        }

        #[inline(always)]
        unsafe fn load_i32_scaled(ptr: *const i32, scale: f32) -> Self {
            let v = _mm256_cvtepi32_ps(_mm256_loadu_si256(ptr as *const __m256i));
            F32x8(_mm256_mul_ps(v, _mm256_set1_ps(scale)))
        }

        #[inline(always)]
        unsafe fn splat(x: f32) -> Self {
            F32x8(_mm256_set1_ps(x))
        }

        #[inline(always)]
        unsafe fn zero() -> Self {
            F32x8(_mm256_setzero_ps())
        }

        #[inline(always)]
        unsafe fn mul(self, rhs: Self) -> Self {
            F32x8(_mm256_mul_ps(self.0, rhs.0))
        }

        #[inline(always)]
        unsafe fn add(self, rhs: Self) -> Self {
            F32x8(_mm256_add_ps(self.0, rhs.0))
        }

        #[inline(always)]
        unsafe fn max(self, rhs: Self) -> Self {
            // Operand order matters: `maxps(a, b)` returns `b` when either
            // operand is NaN or when `a == b` (so `max(-0.0, +0.0) = +0.0`).
            F32x8(_mm256_max_ps(self.0, rhs.0))
        }

        #[inline(always)]
        unsafe fn quantize_u8(self, alpha: f32, offset: i32, dst: *mut u8) {
            let scaled = _mm256_mul_ps(self.0, _mm256_set1_ps(alpha));
            // Clamp in float, then `cvtps2dq` (round-nearest-even) — see
            // the module docs for why this equals round-then-clamp.
            let hi = _mm256_set1_ps(QMAX as f32);
            let lo = _mm256_set1_ps(-(QMAX as f32));
            let clamped = _mm256_max_ps(_mm256_min_ps(scaled, hi), lo);
            let q = _mm256_add_epi32(_mm256_cvtps_epi32(clamped), _mm256_set1_epi32(offset));
            // Low byte of each i32 lane → 8 contiguous bytes: pick bytes
            // {0,4,8,12} inside each 128-bit half, then merge the halves.
            #[rustfmt::skip]
            let pick = _mm256_setr_epi8(
                0, 4, 8, 12, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1,
                0, 4, 8, 12, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1,
            );
            let picked = _mm256_shuffle_epi8(q, pick);
            let lo128 = _mm256_castsi256_si128(picked);
            let hi128 = _mm256_extracti128_si256(picked, 1);
            let merged = _mm_unpacklo_epi32(lo128, hi128);
            _mm_storel_epi64(dst as *mut __m128i, merged);
        }
    }

    /// AVX-512 `f32x16` tier (requires `avx512f` only).
    #[derive(Clone, Copy)]
    pub struct F32x16(__m512);

    impl F32Vector for F32x16 {
        const WIDTH: usize = 16;

        #[inline(always)]
        unsafe fn load(ptr: *const f32) -> Self {
            F32x16(_mm512_loadu_ps(ptr))
        }

        #[inline(always)]
        unsafe fn store(self, ptr: *mut f32) {
            _mm512_storeu_ps(ptr, self.0);
        }

        #[inline(always)]
        unsafe fn load_i32_scaled(ptr: *const i32, scale: f32) -> Self {
            let v = _mm512_cvtepi32_ps(_mm512_loadu_si512(ptr as *const _));
            F32x16(_mm512_mul_ps(v, _mm512_set1_ps(scale)))
        }

        #[inline(always)]
        unsafe fn splat(x: f32) -> Self {
            F32x16(_mm512_set1_ps(x))
        }

        #[inline(always)]
        unsafe fn zero() -> Self {
            F32x16(_mm512_setzero_ps())
        }

        #[inline(always)]
        unsafe fn mul(self, rhs: Self) -> Self {
            F32x16(_mm512_mul_ps(self.0, rhs.0))
        }

        #[inline(always)]
        unsafe fn add(self, rhs: Self) -> Self {
            F32x16(_mm512_add_ps(self.0, rhs.0))
        }

        #[inline(always)]
        unsafe fn max(self, rhs: Self) -> Self {
            F32x16(_mm512_max_ps(self.0, rhs.0))
        }

        #[inline(always)]
        unsafe fn quantize_u8(self, alpha: f32, offset: i32, dst: *mut u8) {
            let scaled = _mm512_mul_ps(self.0, _mm512_set1_ps(alpha));
            let hi = _mm512_set1_ps(QMAX as f32);
            let lo = _mm512_set1_ps(-(QMAX as f32));
            let clamped = _mm512_max_ps(_mm512_min_ps(scaled, hi), lo);
            let q = _mm512_add_epi32(_mm512_cvtps_epi32(clamped), _mm512_set1_epi32(offset));
            // `vpmovdb` truncates each i32 lane to its low byte — exactly
            // the scalar `q as u8` wrap.
            let bytes = _mm512_cvtepi32_epi8(q);
            _mm_storeu_si128(dst as *mut __m128i, bytes);
        }
    }
}

#[cfg(target_arch = "x86_64")]
pub use x86::{F32x16, F32x8};

// -- tiered lane helpers -------------------------------------------------
//
// Vectorized twins of the scalar `cast.rs` conversions, dispatched on
// `VecTier` like `dpbusd` is on `SimdTier`. Bitwise identical to the
// scalar versions for finite inputs (the executors' correctness bar).

#[inline(always)]
unsafe fn quantize_chunks<V: F32Vector>(src: &[f32], alpha: f32, offset: i32, dst: &mut [u8]) {
    let n = src.len();
    let main = n - n % V::WIDTH;
    let (sp, dp) = (src.as_ptr(), dst.as_mut_ptr());
    let mut i = 0;
    while i < main {
        V::load(sp.add(i)).quantize_u8(alpha, offset, dp.add(i));
        i += V::WIDTH;
    }
    while i < n {
        F32x1::load(sp.add(i)).quantize_u8(alpha, offset, dp.add(i));
        i += 1;
    }
}

#[inline(always)]
unsafe fn dequantize_chunks<V: F32Vector>(src: &[i32], inv_alpha: f32, dst: &mut [f32]) {
    let n = src.len();
    let main = n - n % V::WIDTH;
    let (sp, dp) = (src.as_ptr(), dst.as_mut_ptr());
    let mut i = 0;
    while i < main {
        V::load_i32_scaled(sp.add(i), inv_alpha).store(dp.add(i));
        i += V::WIDTH;
    }
    while i < n {
        F32x1::load_i32_scaled(sp.add(i), inv_alpha).store(dp.add(i));
        i += 1;
    }
}

#[inline(always)]
unsafe fn requantize_chunks<V: F32Vector>(src: &[i32], alpha: f32, offset: i32, dst: &mut [u8]) {
    let n = src.len();
    let main = n - n % V::WIDTH;
    let (sp, dp) = (src.as_ptr(), dst.as_mut_ptr());
    let mut i = 0;
    while i < main {
        // cvt·1.0 is exact, so this is `(x as f32 * alpha)` re-rounded
        // identically to the scalar down-scaling loop.
        V::load_i32_scaled(sp.add(i), 1.0).quantize_u8(alpha, offset, dp.add(i));
        i += V::WIDTH;
    }
    while i < n {
        F32x1::load_i32_scaled(sp.add(i), 1.0).quantize_u8(alpha, offset, dp.add(i));
        i += 1;
    }
}

#[cfg(target_arch = "x86_64")]
mod dispatch_x86 {
    use super::*;

    #[target_feature(enable = "avx512f")]
    pub unsafe fn quantize_avx512(src: &[f32], alpha: f32, offset: i32, dst: &mut [u8]) {
        quantize_chunks::<F32x16>(src, alpha, offset, dst);
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn quantize_avx2(src: &[f32], alpha: f32, offset: i32, dst: &mut [u8]) {
        quantize_chunks::<F32x8>(src, alpha, offset, dst);
    }

    #[target_feature(enable = "avx512f")]
    pub unsafe fn dequantize_avx512(src: &[i32], inv_alpha: f32, dst: &mut [f32]) {
        dequantize_chunks::<F32x16>(src, inv_alpha, dst);
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn dequantize_avx2(src: &[i32], inv_alpha: f32, dst: &mut [f32]) {
        dequantize_chunks::<F32x8>(src, inv_alpha, dst);
    }

    #[target_feature(enable = "avx512f")]
    pub unsafe fn requantize_avx512(src: &[i32], alpha: f32, offset: i32, dst: &mut [u8]) {
        requantize_chunks::<F32x16>(src, alpha, offset, dst);
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn requantize_avx2(src: &[i32], alpha: f32, offset: i32, dst: &mut [u8]) {
        requantize_chunks::<F32x8>(src, alpha, offset, dst);
    }
}

/// Tier-dispatched [`quantize_f32_lanes_i8`](crate::quantize_f32_lanes_i8):
/// quantize `src` with scale `alpha` (Eq. 4), add the +128 compensation
/// when `compensate`, emit u8.
///
/// # Panics
///
/// Debug-panics when `vt` exceeds the host capability or the slice lengths
/// differ.
#[inline]
pub fn quantize_lanes(vt: VecTier, src: &[f32], alpha: f32, compensate: bool, dst: &mut [u8]) {
    debug_assert_eq!(src.len(), dst.len());
    debug_assert!(vt <= VecTier::detect(), "vec tier {vt} not supported");
    let offset = if compensate { 128 } else { 0 };
    match vt {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: tier availability checked above; slices same length.
        VecTier::F32x16 => unsafe { dispatch_x86::quantize_avx512(src, alpha, offset, dst) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        VecTier::F32x8 => unsafe { dispatch_x86::quantize_avx2(src, alpha, offset, dst) },
        // SAFETY: scalar model has no feature requirement.
        _ => unsafe { quantize_chunks::<F32x1>(src, alpha, offset, dst) },
    }
}

/// Tier-dispatched [`dequantize_i32_lanes`](crate::dequantize_i32_lanes)
/// (Eq. 6): `dst = src as f32 * inv_alpha`.
///
/// # Panics
///
/// Debug-panics when `vt` exceeds the host capability or the slice lengths
/// differ.
#[inline]
pub fn dequantize_lanes(vt: VecTier, src: &[i32], inv_alpha: f32, dst: &mut [f32]) {
    debug_assert_eq!(src.len(), dst.len());
    debug_assert!(vt <= VecTier::detect(), "vec tier {vt} not supported");
    match vt {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: tier availability checked above; slices same length.
        VecTier::F32x16 => unsafe { dispatch_x86::dequantize_avx512(src, inv_alpha, dst) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        VecTier::F32x8 => unsafe { dispatch_x86::dequantize_avx2(src, inv_alpha, dst) },
        // SAFETY: scalar model has no feature requirement.
        _ => unsafe { dequantize_chunks::<F32x1>(src, inv_alpha, dst) },
    }
}

/// Tier-dispatched re-quantization of integer transform outputs (the
/// down-scaling baseline's ❷ step): `clamp(round(src as f32 · alpha))`
/// plus the +128 compensation when `compensate`, emitted as u8.
///
/// # Panics
///
/// Debug-panics when `vt` exceeds the host capability or the slice lengths
/// differ.
#[inline]
pub fn requantize_i32_lanes(vt: VecTier, src: &[i32], alpha: f32, compensate: bool, dst: &mut [u8]) {
    debug_assert_eq!(src.len(), dst.len());
    debug_assert!(vt <= VecTier::detect(), "vec tier {vt} not supported");
    let offset = if compensate { 128 } else { 0 };
    match vt {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: tier availability checked above; slices same length.
        VecTier::F32x16 => unsafe { dispatch_x86::requantize_avx512(src, alpha, offset, dst) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        VecTier::F32x8 => unsafe { dispatch_x86::requantize_avx2(src, alpha, offset, dst) },
        // SAFETY: scalar model has no feature requirement.
        _ => unsafe { requantize_chunks::<F32x1>(src, alpha, offset, dst) },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cast::{dequantize_i32_lanes, quantize_f32_lanes_i8};

    fn pattern_f32(len: usize, seed: u64) -> Vec<f32> {
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                // Mix of in-range, boundary and saturating magnitudes.
                ((s % 4001) as f32 - 2000.0) / 7.0
            })
            .collect()
    }

    #[test]
    fn tier_ordering_and_mapping() {
        assert!(VecTier::Scalar < VecTier::F32x8);
        assert!(VecTier::F32x8 < VecTier::F32x16);
        assert_eq!(VecTier::for_simd(SimdTier::Scalar), VecTier::Scalar);
        assert_eq!(VecTier::for_simd(SimdTier::Avx2), VecTier::F32x8);
        assert_eq!(VecTier::for_simd(SimdTier::Avx512Vnni), VecTier::F32x16);
        let avail = VecTier::available();
        assert_eq!(*avail.last().unwrap(), VecTier::Scalar);
        for w in avail.windows(2) {
            assert!(w[0] > w[1]);
        }
        assert_eq!(VecTier::Scalar.width(), 1);
        assert_eq!(VecTier::F32x8.width(), 8);
        assert_eq!(VecTier::F32x16.to_string(), "f32x16");
    }

    #[test]
    fn quantize_matches_scalar_spec_all_tiers() {
        // Lengths straddle every chunk boundary (tails of 0..width-1).
        for len in [1usize, 7, 8, 15, 16, 17, 31, 64, 67] {
            let src = pattern_f32(len, len as u64);
            for compensate in [true, false] {
                let mut want = vec![0u8; len];
                quantize_f32_lanes_i8(&src, 12.7, compensate, &mut want);
                for vt in VecTier::available() {
                    let mut got = vec![0u8; len];
                    quantize_lanes(vt, &src, 12.7, compensate, &mut got);
                    assert_eq!(got, want, "vt={vt} len={len} compensate={compensate}");
                }
            }
        }
    }

    #[test]
    fn quantize_boundary_values_all_tiers() {
        // Exact clamp-boundary and tie cases — where clamp-then-round vs
        // round-then-clamp could diverge if mis-implemented.
        let src = [
            126.5f32, 127.0, 127.4, 127.49, 127.5, 127.6, 128.0, 1000.0, -126.5, -127.0, -127.5,
            -127.6, -128.0, -1000.0, 0.5, -0.5, 1.5, 2.5, 0.0, -0.0,
        ];
        let mut want = vec![0u8; src.len()];
        quantize_f32_lanes_i8(&src, 1.0, true, &mut want);
        for vt in VecTier::available() {
            let mut got = vec![0u8; src.len()];
            quantize_lanes(vt, &src, 1.0, true, &mut got);
            assert_eq!(got, want, "vt={vt}");
        }
    }

    #[test]
    fn dequantize_matches_scalar_spec_all_tiers() {
        for len in [1usize, 5, 16, 33, 64] {
            let src: Vec<i32> = (0..len as i32).map(|i| i * 7919 - 1000).collect();
            let mut want = vec![0f32; len];
            dequantize_i32_lanes(&src, 0.0317, &mut want);
            for vt in VecTier::available() {
                let mut got = vec![0f32; len];
                dequantize_lanes(vt, &src, 0.0317, &mut got);
                assert_eq!(
                    got.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    want.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    "vt={vt} len={len}"
                );
            }
        }
    }

    #[test]
    fn max_with_zero_matches_relu_spec_all_tiers() {
        // The fused ReLU epilogue is `v.max(zero())`; its contract is the
        // scalar `if v > 0.0 { v } else { 0.0 }` — including the signed-zero
        // case (`-0.0` → `+0.0`, bitwise).
        let src = [1.5f32, -2.0, 0.0, -0.0, 3.25e-20, -3.25e-20, 127.0, -127.0];
        let want: Vec<u32> = src
            .iter()
            .map(|&x| (if x > 0.0 { x } else { 0.0 }).to_bits())
            .collect();
        // Scalar model.
        let got: Vec<u32> = src
            .iter()
            .map(|&x| unsafe { F32x1(x).max(F32x1::zero()) }.0.to_bits())
            .collect();
        assert_eq!(got, want, "scalar");
        // Vector tiers, checked through the generic relu-ing copy below.
        unsafe fn relu_copy<V: F32Vector>(src: &[f32], dst: &mut [f32]) {
            let mut i = 0;
            while i + V::WIDTH <= src.len() {
                V::load(src.as_ptr().add(i))
                    .max(V::zero())
                    .store(dst.as_mut_ptr().add(i));
                i += V::WIDTH;
            }
            while i < src.len() {
                F32x1::load(src.as_ptr().add(i))
                    .max(F32x1::zero())
                    .store(dst.as_mut_ptr().add(i));
                i += 1;
            }
        }
        #[cfg(target_arch = "x86_64")]
        {
            #[target_feature(enable = "avx2")]
            unsafe fn relu_avx2(src: &[f32], dst: &mut [f32]) {
                relu_copy::<F32x8>(src, dst);
            }
            #[target_feature(enable = "avx512f")]
            unsafe fn relu_avx512(src: &[f32], dst: &mut [f32]) {
                relu_copy::<F32x16>(src, dst);
            }
            for vt in VecTier::available() {
                let mut got = vec![0f32; src.len()];
                // SAFETY: tier reported available by `VecTier::available`.
                match vt {
                    VecTier::F32x16 => unsafe { relu_avx512(&src, &mut got) },
                    VecTier::F32x8 => unsafe { relu_avx2(&src, &mut got) },
                    VecTier::Scalar => unsafe { relu_copy::<F32x1>(&src, &mut got) },
                }
                let got: Vec<u32> = got.iter().map(|x| x.to_bits()).collect();
                assert_eq!(got, want, "vt={vt}");
            }
        }
    }

    #[test]
    fn requantize_matches_downscale_loop_all_tiers() {
        // The scalar spelling used by the down-scaling executor.
        let src: Vec<i32> = (-40..41).map(|i| i * 431).collect();
        let alpha = 0.01f32;
        let want: Vec<u8> = src
            .iter()
            .map(|&sv| {
                let scaled = (sv as f32 * alpha).round_ties_even().clamp(-127.0, 127.0);
                (scaled as i32 + 128) as u8
            })
            .collect();
        for vt in VecTier::available() {
            let mut got = vec![0u8; src.len()];
            requantize_i32_lanes(vt, &src, alpha, true, &mut got);
            assert_eq!(got, want, "vt={vt}");
        }
    }
}
