//! Deterministic pseudo-random numbers for tests, benches and synthetic
//! data: a [xoshiro256++](https://prng.di.unimi.it/) core seeded through
//! SplitMix64, the canonical pairing recommended by the xoshiro authors.
//!
//! This is *not* a cryptographic generator. It exists so the workspace
//! needs no `rand` crate: every use here is "reproducible noise" —
//! synthetic activations, weight init, shuffles, property-test cases —
//! where determinism across platforms matters and security does not.

/// One SplitMix64 step: advances `state` and returns the next output.
///
/// Public because the property harness also uses it to derive independent
/// per-case seeds from a base seed.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ generator with `rand`-style convenience helpers.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Seed the 256-bit state from a single `u64` via SplitMix64 (the
    /// initialisation the xoshiro reference code prescribes; it guarantees
    /// a non-zero state for every seed).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Self {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit output (xoshiro256++ step).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Next 32-bit output (upper half — xoshiro's weakest bits are low).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f32` in `[0, 1)` (24 explicit mantissa bits).
    #[inline]
    pub fn f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform `f64` in `[0, 1)` (53 explicit mantissa bits).
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[lo, hi)`.
    #[inline]
    pub fn f32_range(&mut self, lo: f32, hi: f32) -> f32 {
        debug_assert!(lo < hi, "f32_range: empty range [{lo}, {hi})");
        lo + self.f32() * (hi - lo)
    }

    /// Uniform `u64` in `[0, bound)` by Lemire's multiply-shift rejection
    /// (unbiased; the rejection loop runs ~once for any realistic bound).
    #[inline]
    pub fn bounded_u64(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "bounded_u64: zero bound");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `usize` in `[lo, hi)`.
    #[inline]
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo < hi, "range_usize: empty range [{lo}, {hi})");
        lo + self.bounded_u64((hi - lo) as u64) as usize
    }

    /// Uniform `u64` in `[lo, hi)`.
    #[inline]
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi, "range_u64: empty range [{lo}, {hi})");
        lo + self.bounded_u64(hi - lo)
    }

    /// Uniform `i64` in `[lo, hi)`.
    #[inline]
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo < hi, "range_i64: empty range [{lo}, {hi})");
        lo.wrapping_add(self.bounded_u64(hi.wrapping_sub(lo) as u64) as i64)
    }

    /// Uniform `i32` in `[lo, hi)`.
    #[inline]
    pub fn range_i32(&mut self, lo: i32, hi: i32) -> i32 {
        self.range_i64(i64::from(lo), i64::from(hi)) as i32
    }

    /// Uniform `i8` over the full range.
    #[inline]
    pub fn i8(&mut self) -> i8 {
        (self.next_u64() >> 56) as u8 as i8
    }

    /// Uniform `u8` over the full range.
    #[inline]
    pub fn u8(&mut self) -> u8 {
        (self.next_u64() >> 56) as u8
    }

    /// Fill a slice with uniform `f32` in `[lo, hi)`.
    pub fn fill_f32(&mut self, dst: &mut [f32], lo: f32, hi: f32) {
        for v in dst {
            *v = self.f32_range(lo, hi);
        }
    }

    /// Exponential deviate with the given mean (inverse-CDF transform).
    /// The inter-arrival gap of a Poisson process with rate `1/mean` —
    /// what the serving load tests use for open-loop request streams.
    #[inline]
    pub fn exp_f64(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0, "exp_f64: non-positive mean {mean}");
        // 1 - f64() is in (0, 1], so ln() is finite and non-positive.
        -mean * (1.0 - self.f64()).ln()
    }

    /// Sum of four centred uniforms — a cheap bell-ish distribution for
    /// synthetic activations (what the bench harness feeds calibration).
    #[inline]
    pub fn bellish(&mut self, amplitude: f32) -> f32 {
        let s = self.f32() + self.f32() + self.f32() + self.f32() - 2.0;
        s * amplitude
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, data: &mut [T]) {
        for i in (1..data.len()).rev() {
            let j = self.bounded_u64(i as u64 + 1) as usize;
            data.swap(i, j);
        }
    }

    /// Pick an element of a non-empty slice.
    #[inline]
    pub fn choose<'a, T>(&mut self, data: &'a [T]) -> &'a T {
        &data[self.range_usize(0, data.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xoshiro_reference_vector() {
        // First outputs of xoshiro256++ from the state {1, 2, 3, 4} — the
        // published reference implementation's behaviour.
        let mut rng = Rng { s: [1, 2, 3, 4] };
        let got: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert_eq!(got, vec![41943041, 58720359, 3588806011781223, 3591011842654386]);
    }

    #[test]
    fn splitmix_reference_vector() {
        // SplitMix64 test vector (seed 0): first output.
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn deterministic_across_clones() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert_ne!(
            Rng::seed_from_u64(1).next_u64(),
            Rng::seed_from_u64(2).next_u64()
        );
    }

    #[test]
    fn f32_unit_interval() {
        let mut rng = Rng::seed_from_u64(11);
        let mut lo = 1.0f32;
        let mut hi = 0.0f32;
        for _ in 0..10_000 {
            let v = rng.f32();
            assert!((0.0..1.0).contains(&v), "{v}");
            lo = lo.min(v);
            hi = hi.max(v);
        }
        // Covers most of the interval.
        assert!(lo < 0.01 && hi > 0.99, "lo={lo} hi={hi}");
    }

    #[test]
    fn bounded_is_unbiased_enough() {
        let mut rng = Rng::seed_from_u64(3);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            counts[rng.range_usize(0, 5)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn signed_ranges() {
        let mut rng = Rng::seed_from_u64(5);
        for _ in 0..1000 {
            let v = rng.range_i32(-3, 4);
            assert!((-3..4).contains(&v));
        }
        let mut seen_neg = false;
        let mut seen_pos = false;
        for _ in 0..100 {
            let v = rng.range_i64(i64::MIN / 2, i64::MAX / 2);
            seen_neg |= v < 0;
            seen_pos |= v > 0;
        }
        assert!(seen_neg && seen_pos);
    }

    #[test]
    fn exponential_has_the_right_mean_and_sign() {
        let mut rng = Rng::seed_from_u64(17);
        let n = 50_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = rng.exp_f64(250.0);
            assert!(v >= 0.0 && v.is_finite(), "{v}");
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((235.0..265.0).contains(&mean), "empirical mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50-element shuffle left order intact");
    }

    #[test]
    fn full_width_byte_helpers() {
        let mut rng = Rng::seed_from_u64(13);
        let mut seen = [false; 256];
        for _ in 0..20_000 {
            seen[rng.u8() as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "u8 never produced some value");
    }
}
