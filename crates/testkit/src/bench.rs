//! Micro-benchmark timer (the in-tree `criterion` replacement).
//!
//! Model: warm up for a fixed duration, then take `samples` timed samples;
//! each sample runs the closure in a batch sized so one batch lasts at
//! least `sample_time / samples`, and reports nanoseconds **per iteration**.
//! The summary statistic is the **median of samples** — robust against the
//! interrupt/migration noise of shared hosts.
//!
//! Every finished benchmark prints one human-readable line and one JSON
//! line (prefixed `BENCH_JSON `) to stdout; when the `LOWINO_BENCH_JSON`
//! environment variable names a file, the JSON lines are also appended
//! there, so a suite run with `LOWINO_BENCH_JSON=BENCH_kernels.json`
//! accumulates a machine-readable `BENCH_*.json` log (one JSON object per
//! line).

use std::io::Write as _;
use std::time::{Duration, Instant};

/// Per-benchmark timing summary (all per-iteration, in nanoseconds).
#[derive(Debug, Clone)]
pub struct Stats {
    /// Benchmark identifier, `group/name`.
    pub id: String,
    /// Median of the per-sample ns/iter values.
    pub median_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Arithmetic mean over samples.
    pub mean_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
    /// Iterations per sample batch.
    pub batch: u64,
    /// Optional elements processed per iteration (throughput).
    pub elements: Option<u64>,
}

impl Stats {
    /// Billions of elements per second at the median, if a throughput was
    /// declared.
    pub fn gelems_per_s(&self) -> Option<f64> {
        self.elements
            .map(|e| e as f64 / self.median_ns.max(f64::MIN_POSITIVE))
    }

    /// Elements per second at the median, if a throughput was declared.
    /// The readable unit for whole-model benches where one element is one
    /// image: this **is** imgs/s.
    pub fn elems_per_s(&self) -> Option<f64> {
        self.gelems_per_s().map(|g| g * 1e9)
    }

    /// The JSON object line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"bench\":\"{}\",\"median_ns\":{:.3},\"min_ns\":{:.3},\"mean_ns\":{:.3},\
             \"samples\":{},\"batch\":{}",
            escape_json(&self.id),
            self.median_ns,
            self.min_ns,
            self.mean_ns,
            self.samples,
            self.batch,
        );
        if let Some(e) = self.elements {
            s.push_str(&format!(",\"elements\":{e}"));
            if let Some(g) = self.gelems_per_s() {
                s.push_str(&format!(",\"gelems_per_s\":{g:.4}"));
            }
            if let Some(r) = self.elems_per_s() {
                s.push_str(&format!(",\"elems_per_s\":{r:.1}"));
            }
        }
        s.push('}');
        s
    }
}

fn escape_json(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// A named group of benchmarks sharing timing settings (the `criterion`
/// `BenchmarkGroup` analogue).
pub struct BenchGroup {
    name: String,
    warmup: Duration,
    sample_time: Duration,
    samples: usize,
    elements: Option<u64>,
    results: Vec<Stats>,
}

impl BenchGroup {
    /// New group with defaults sized for CI: 300 ms warm-up, 1 s of
    /// samples, 15 samples.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            warmup: Duration::from_millis(300),
            sample_time: Duration::from_secs(1),
            samples: 15,
            elements: None,
            results: Vec::new(),
        }
    }

    /// Set the warm-up duration.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warmup = d;
        self
    }

    /// Set the total measurement time budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.sample_time = d;
        self
    }

    /// Set the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(3);
        self
    }

    /// Declare elements processed per iteration (enables Gelem/s output).
    pub fn throughput_elements(&mut self, elements: u64) -> &mut Self {
        self.elements = Some(elements);
        self
    }

    /// Run one benchmark: `f` is called once per iteration.
    pub fn bench_function(&mut self, id: impl core::fmt::Display, mut f: impl FnMut()) -> &Stats {
        let full_id = format!("{}/{id}", self.name);

        // Warm up while estimating the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warmup || warm_iters == 0 {
            f();
            warm_iters += 1;
        }
        let est_ns =
            (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(f64::MIN_POSITIVE);

        // Batch size so one sample lasts ~sample_time/samples.
        let per_sample_ns = self.sample_time.as_nanos() as f64 / self.samples as f64;
        let batch = ((per_sample_ns / est_ns).round() as u64).max(1);

        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..batch {
                f();
            }
            per_iter.push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let median = if per_iter.len() % 2 == 1 {
            per_iter[per_iter.len() / 2]
        } else {
            (per_iter[per_iter.len() / 2 - 1] + per_iter[per_iter.len() / 2]) / 2.0
        };
        let stats = Stats {
            id: full_id,
            median_ns: median,
            min_ns: per_iter[0],
            mean_ns: per_iter.iter().sum::<f64>() / per_iter.len() as f64,
            samples: per_iter.len(),
            batch,
            elements: self.elements,
        };
        report(&stats);
        self.results.push(stats);
        self.results.last().expect("just pushed")
    }

    /// Results accumulated so far.
    pub fn results(&self) -> &[Stats] {
        &self.results
    }
}

fn report(s: &Stats) {
    let mut line = format!("{:<44} median {}", s.id, fmt_ns(s.median_ns));
    if let Some(g) = s.gelems_per_s() {
        let elems = s.elements.expect("throughput set");
        // Pick the unit that carries digits: kernel benches read in
        // Gelem/s, whole-model benches in elem/s (= imgs/s).
        if g >= 0.01 {
            line.push_str(&format!("  ({elems} elems, {g:.2} Gelem/s)"));
        } else {
            let r = s.elems_per_s().expect("throughput set");
            line.push_str(&format!("  ({elems} elems, {r:.0} elem/s)"));
        }
    }
    println!("{line}");
    let json = s.to_json();
    println!("BENCH_JSON {json}");
    if let Ok(path) = std::env::var("LOWINO_BENCH_JSON") {
        if !path.is_empty() {
            if let Ok(mut file) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
            {
                let _ = writeln!(file, "{json}");
            }
        }
    }
}

/// Adaptive ns/us/ms formatting of a per-iteration time.
pub fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1}ns/iter")
    } else if ns < 1_000_000.0 {
        format!("{:.2}us/iter", ns / 1_000.0)
    } else {
        format!("{:.3}ms/iter", ns / 1_000_000.0)
    }
}

/// Prevent the optimiser from deleting a benchmarked computation.
///
/// Thin wrapper over `std::hint::black_box` so bench code only needs this
/// crate in scope.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_group(name: &str) -> BenchGroup {
        let mut g = BenchGroup::new(name);
        g.warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(10))
            .sample_size(5);
        g
    }

    #[test]
    fn measures_something_positive() {
        let mut g = quick_group("t");
        let s = g.bench_function("spin", || {
            black_box((0..100u64).sum::<u64>());
        });
        assert!(s.median_ns > 0.0);
        assert!(s.min_ns <= s.median_ns);
        assert_eq!(s.samples, 5);
    }

    #[test]
    fn throughput_and_json() {
        let mut g = quick_group("t");
        g.throughput_elements(64);
        let s = g.bench_function("spin", || {
            black_box((0..64u64).sum::<u64>());
        });
        let json = s.to_json();
        assert!(json.starts_with("{\"bench\":\"t/spin\""), "{json}");
        assert!(json.contains("\"elements\":64"), "{json}");
        assert!(json.contains("gelems_per_s"), "{json}");
        assert!(json.contains("elems_per_s"), "{json}");
        assert!(json.ends_with('}'), "{json}");
        assert!(s.gelems_per_s().expect("throughput") > 0.0);
        let rate = s.elems_per_s().expect("throughput");
        assert!((rate - s.gelems_per_s().expect("throughput") * 1e9).abs() < 1e-3);
    }

    #[test]
    fn json_escaping() {
        assert_eq!(escape_json("a\"b\\c"), "a\\\"b\\\\c");
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(fmt_ns(12.34), "12.3ns/iter");
        assert_eq!(fmt_ns(4321.0), "4.32us/iter");
        assert_eq!(fmt_ns(7_654_321.0), "7.654ms/iter");
    }

    #[test]
    fn group_accumulates_results() {
        let mut g = quick_group("t");
        g.bench_function("a", || {
            black_box(1u64);
        });
        g.bench_function("b", || {
            black_box(2u64);
        });
        assert_eq!(g.results().len(), 2);
        assert_eq!(g.results()[0].id, "t/a");
        assert_eq!(g.results()[1].id, "t/b");
    }
}
