//! Micro-benchmark timer (the in-tree `criterion` replacement).
//!
//! Model: warm up for a fixed duration, then take `samples` timed samples;
//! each sample runs the closure in a batch sized so one batch lasts at
//! least `sample_time / samples`, and reports nanoseconds **per iteration**.
//! The summary statistic is the **median of samples** — robust against the
//! interrupt/migration noise of shared hosts.
//!
//! Every finished benchmark prints one human-readable line and one JSON
//! line (prefixed `BENCH_JSON `) to stdout; when the `LOWINO_BENCH_JSON`
//! environment variable names a file, the JSON lines are also appended
//! there, so a suite run with `LOWINO_BENCH_JSON=BENCH_kernels.json`
//! accumulates a machine-readable `BENCH_*.json` log (one JSON object per
//! line).

use std::io::Write as _;
use std::time::{Duration, Instant};

/// Per-benchmark timing summary (all per-iteration, in nanoseconds).
#[derive(Debug, Clone)]
pub struct Stats {
    /// Benchmark identifier, `group/name`.
    pub id: String,
    /// Median of the per-sample ns/iter values.
    pub median_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Arithmetic mean over samples.
    pub mean_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
    /// Iterations per sample batch.
    pub batch: u64,
    /// Optional elements processed per iteration (throughput).
    pub elements: Option<u64>,
}

impl Stats {
    /// Billions of elements per second at the median, if a throughput was
    /// declared.
    pub fn gelems_per_s(&self) -> Option<f64> {
        self.elements
            .map(|e| e as f64 / self.median_ns.max(f64::MIN_POSITIVE))
    }

    /// Elements per second at the median, if a throughput was declared.
    /// The readable unit for whole-model benches where one element is one
    /// image: this **is** imgs/s.
    pub fn elems_per_s(&self) -> Option<f64> {
        self.gelems_per_s().map(|g| g * 1e9)
    }

    /// The JSON object line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"bench\":\"{}\",\"median_ns\":{:.3},\"min_ns\":{:.3},\"mean_ns\":{:.3},\
             \"samples\":{},\"batch\":{}",
            escape_json(&self.id),
            self.median_ns,
            self.min_ns,
            self.mean_ns,
            self.samples,
            self.batch,
        );
        if let Some(e) = self.elements {
            s.push_str(&format!(",\"elements\":{e}"));
            if let Some(g) = self.gelems_per_s() {
                s.push_str(&format!(",\"gelems_per_s\":{g:.4}"));
            }
            if let Some(r) = self.elems_per_s() {
                s.push_str(&format!(",\"elems_per_s\":{r:.1}"));
            }
        }
        s.push('}');
        s
    }
}

/// Tail-latency summary of a sustained-load run (the serving analogue of
/// [`Stats`]): request latencies collapse to p50/p99/p999/max and the run
/// reports throughput instead of ns/iter. Shares the `BENCH_JSON` line
/// protocol and the `LOWINO_BENCH_JSON` append path with [`Stats`], so one
/// `BENCH_*.json` log can hold both kernel medians and load percentiles.
#[derive(Debug, Clone)]
pub struct LoadStats {
    /// Benchmark identifier, `group/name`.
    pub id: String,
    /// Requests that received a successful response.
    pub requests: u64,
    /// Requests rejected by admission control (503).
    pub rejected: u64,
    /// Wall-clock duration of the whole run.
    pub wall_ns: u64,
    /// Median request latency.
    pub p50_ns: u64,
    /// 99th-percentile request latency.
    pub p99_ns: u64,
    /// 99.9th-percentile request latency.
    pub p999_ns: u64,
    /// Worst observed request latency.
    pub max_ns: u64,
}

impl LoadStats {
    /// Summarise a run from its raw per-request latencies (ns). Sorts the
    /// slice in place. `latencies` must be non-empty.
    pub fn from_latencies(
        id: impl Into<String>,
        latencies: &mut [u64],
        rejected: u64,
        wall_ns: u64,
    ) -> Self {
        assert!(!latencies.is_empty(), "LoadStats: no completed requests");
        latencies.sort_unstable();
        Self {
            id: id.into(),
            requests: latencies.len() as u64,
            rejected,
            wall_ns,
            p50_ns: percentile_ns(latencies, 0.50),
            p99_ns: percentile_ns(latencies, 0.99),
            p999_ns: percentile_ns(latencies, 0.999),
            max_ns: *latencies.last().expect("non-empty"),
        }
    }

    /// Successful responses per second over the wall-clock window.
    pub fn throughput_rps(&self) -> f64 {
        self.requests as f64 * 1e9 / (self.wall_ns.max(1)) as f64
    }

    /// The JSON object line (no trailing newline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"bench\":\"{}\",\"requests\":{},\"rejected\":{},\"wall_ns\":{},\
             \"throughput_rps\":{:.1},\"p50_ns\":{},\"p99_ns\":{},\"p999_ns\":{},\
             \"max_ns\":{}}}",
            escape_json(&self.id),
            self.requests,
            self.rejected,
            self.wall_ns,
            self.throughput_rps(),
            self.p50_ns,
            self.p99_ns,
            self.p999_ns,
            self.max_ns,
        )
    }

    /// Print the human line + `BENCH_JSON` line (and append to
    /// `LOWINO_BENCH_JSON` when set), exactly like a finished [`Stats`].
    pub fn report(&self) {
        println!(
            "{:<44} {:.0} req/s  p50 {}  p99 {}  p999 {}  ({} ok, {} rejected)",
            self.id,
            self.throughput_rps(),
            fmt_ns(self.p50_ns as f64),
            fmt_ns(self.p99_ns as f64),
            fmt_ns(self.p999_ns as f64),
            self.requests,
            self.rejected,
        );
        emit_json_line(&self.to_json());
    }
}

/// Nearest-rank percentile of an ascending-sorted slice (`q` in `[0, 1]`).
pub fn percentile_ns(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "slice not sorted");
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn escape_json(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// A named group of benchmarks sharing timing settings (the `criterion`
/// `BenchmarkGroup` analogue).
pub struct BenchGroup {
    name: String,
    warmup: Duration,
    sample_time: Duration,
    samples: usize,
    elements: Option<u64>,
    results: Vec<Stats>,
}

impl BenchGroup {
    /// New group with defaults sized for CI: 300 ms warm-up, 1 s of
    /// samples, 15 samples.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            warmup: Duration::from_millis(300),
            sample_time: Duration::from_secs(1),
            samples: 15,
            elements: None,
            results: Vec::new(),
        }
    }

    /// Set the warm-up duration.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warmup = d;
        self
    }

    /// Set the total measurement time budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.sample_time = d;
        self
    }

    /// Set the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(3);
        self
    }

    /// Declare elements processed per iteration (enables Gelem/s output).
    pub fn throughput_elements(&mut self, elements: u64) -> &mut Self {
        self.elements = Some(elements);
        self
    }

    /// Run one benchmark: `f` is called once per iteration.
    pub fn bench_function(&mut self, id: impl core::fmt::Display, mut f: impl FnMut()) -> &Stats {
        let full_id = format!("{}/{id}", self.name);

        // Warm up while estimating the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warmup || warm_iters == 0 {
            f();
            warm_iters += 1;
        }
        let est_ns =
            (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(f64::MIN_POSITIVE);

        // Batch size so one sample lasts ~sample_time/samples.
        let per_sample_ns = self.sample_time.as_nanos() as f64 / self.samples as f64;
        let batch = ((per_sample_ns / est_ns).round() as u64).max(1);

        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..batch {
                f();
            }
            per_iter.push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let median = if per_iter.len() % 2 == 1 {
            per_iter[per_iter.len() / 2]
        } else {
            (per_iter[per_iter.len() / 2 - 1] + per_iter[per_iter.len() / 2]) / 2.0
        };
        let stats = Stats {
            id: full_id,
            median_ns: median,
            min_ns: per_iter[0],
            mean_ns: per_iter.iter().sum::<f64>() / per_iter.len() as f64,
            samples: per_iter.len(),
            batch,
            elements: self.elements,
        };
        report(&stats);
        self.results.push(stats);
        self.results.last().expect("just pushed")
    }

    /// Results accumulated so far.
    pub fn results(&self) -> &[Stats] {
        &self.results
    }
}

fn report(s: &Stats) {
    let mut line = format!("{:<44} median {}", s.id, fmt_ns(s.median_ns));
    if let Some(g) = s.gelems_per_s() {
        let elems = s.elements.expect("throughput set");
        // Pick the unit that carries digits: kernel benches read in
        // Gelem/s, whole-model benches in elem/s (= imgs/s).
        if g >= 0.01 {
            line.push_str(&format!("  ({elems} elems, {g:.2} Gelem/s)"));
        } else {
            let r = s.elems_per_s().expect("throughput set");
            line.push_str(&format!("  ({elems} elems, {r:.0} elem/s)"));
        }
    }
    println!("{line}");
    emit_json_line(&s.to_json());
}

/// Print one `BENCH_JSON` line and append it to `LOWINO_BENCH_JSON` when
/// that names a file (shared by [`Stats`] and [`LoadStats`]).
fn emit_json_line(json: &str) {
    println!("BENCH_JSON {json}");
    if let Ok(path) = std::env::var("LOWINO_BENCH_JSON") {
        if !path.is_empty() {
            if let Ok(mut file) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
            {
                let _ = writeln!(file, "{json}");
            }
        }
    }
}

/// Adaptive ns/us/ms formatting of a per-iteration time.
pub fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1}ns/iter")
    } else if ns < 1_000_000.0 {
        format!("{:.2}us/iter", ns / 1_000.0)
    } else {
        format!("{:.3}ms/iter", ns / 1_000_000.0)
    }
}

/// Prevent the optimiser from deleting a benchmarked computation.
///
/// Thin wrapper over `std::hint::black_box` so bench code only needs this
/// crate in scope.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_group(name: &str) -> BenchGroup {
        let mut g = BenchGroup::new(name);
        g.warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(10))
            .sample_size(5);
        g
    }

    #[test]
    fn measures_something_positive() {
        let mut g = quick_group("t");
        let s = g.bench_function("spin", || {
            black_box((0..100u64).sum::<u64>());
        });
        assert!(s.median_ns > 0.0);
        assert!(s.min_ns <= s.median_ns);
        assert_eq!(s.samples, 5);
    }

    #[test]
    fn throughput_and_json() {
        let mut g = quick_group("t");
        g.throughput_elements(64);
        let s = g.bench_function("spin", || {
            black_box((0..64u64).sum::<u64>());
        });
        let json = s.to_json();
        assert!(json.starts_with("{\"bench\":\"t/spin\""), "{json}");
        assert!(json.contains("\"elements\":64"), "{json}");
        assert!(json.contains("gelems_per_s"), "{json}");
        assert!(json.contains("elems_per_s"), "{json}");
        assert!(json.ends_with('}'), "{json}");
        assert!(s.gelems_per_s().expect("throughput") > 0.0);
        let rate = s.elems_per_s().expect("throughput");
        assert!((rate - s.gelems_per_s().expect("throughput") * 1e9).abs() < 1e-3);
    }

    #[test]
    fn json_escaping() {
        assert_eq!(escape_json("a\"b\\c"), "a\\\"b\\\\c");
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(fmt_ns(12.34), "12.3ns/iter");
        assert_eq!(fmt_ns(4321.0), "4.32us/iter");
        assert_eq!(fmt_ns(7_654_321.0), "7.654ms/iter");
    }

    #[test]
    fn percentiles_nearest_rank() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_ns(&sorted, 0.50), 50);
        assert_eq!(percentile_ns(&sorted, 0.99), 99);
        assert_eq!(percentile_ns(&sorted, 0.999), 100);
        assert_eq!(percentile_ns(&sorted, 0.0), 1);
        assert_eq!(percentile_ns(&sorted, 1.0), 100);
        assert_eq!(percentile_ns(&[7], 0.999), 7);
    }

    #[test]
    fn load_stats_json_and_throughput() {
        let mut lat: Vec<u64> = (1..=1000).rev().collect();
        let s = LoadStats::from_latencies("serve/poisson_s2", &mut lat, 3, 2_000_000_000);
        assert_eq!(s.requests, 1000);
        assert_eq!(s.p50_ns, 500);
        assert_eq!(s.p99_ns, 990);
        assert_eq!(s.p999_ns, 999);
        assert_eq!(s.max_ns, 1000);
        assert!((s.throughput_rps() - 500.0).abs() < 1e-9);
        let json = s.to_json();
        assert!(json.starts_with("{\"bench\":\"serve/poisson_s2\""), "{json}");
        for key in ["throughput_rps", "p50_ns", "p99_ns", "p999_ns", "rejected"] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        crate::json::validate_json(&json).expect("valid JSON");
    }

    #[test]
    fn group_accumulates_results() {
        let mut g = quick_group("t");
        g.bench_function("a", || {
            black_box(1u64);
        });
        g.bench_function("b", || {
            black_box(2u64);
        });
        assert_eq!(g.results().len(), 2);
        assert_eq!(g.results()[0].id, "t/a");
        assert_eq!(g.results()[1].id, "t/b");
    }
}
