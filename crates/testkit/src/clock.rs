//! Virtual time for deterministic concurrency tests.
//!
//! The serving stack's batching state machine is driven entirely by
//! timestamps ("dispatch when the oldest request is `max_delay` old"), so
//! its tests must control time, not sample it. [`VirtualClock`] is a
//! shared monotonic nanosecond counter that only advances when a test says
//! so; [`PoissonArrivals`] turns the testkit PRNG into a reproducible
//! Poisson-process arrival stream (exponential inter-arrival gaps), the
//! standard open-loop load model for sustained-traffic benchmarks.
//!
//! Neither type knows about the serving crate: `lowino-serve` defines the
//! `Clock` trait and implements it for [`VirtualClock`], keeping this
//! crate dependency-free.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::rng::Rng;

/// A shared, manually-advanced monotonic clock (nanoseconds since an
/// arbitrary epoch). Clones observe the same time.
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    ns: Arc<AtomicU64>,
}

impl VirtualClock {
    /// A clock at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// A clock starting at `start_ns`.
    pub fn starting_at(start_ns: u64) -> Self {
        let c = Self::new();
        c.ns.store(start_ns, Ordering::Release);
        c
    }

    /// Current virtual time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.ns.load(Ordering::Acquire)
    }

    /// Advance time by `delta_ns`, returning the new now.
    pub fn advance(&self, delta_ns: u64) -> u64 {
        self.ns.fetch_add(delta_ns, Ordering::AcqRel) + delta_ns
    }

    /// Jump time forward to `t_ns`. Monotonic: a target in the past is
    /// ignored (time never rewinds). Returns the resulting now.
    pub fn advance_to(&self, t_ns: u64) -> u64 {
        self.ns.fetch_max(t_ns, Ordering::AcqRel).max(t_ns)
    }
}

/// A reproducible Poisson-process arrival stream: an infinite iterator of
/// absolute arrival times (ns) whose gaps are i.i.d. exponential with the
/// configured mean.
#[derive(Debug, Clone)]
pub struct PoissonArrivals {
    rng: Rng,
    mean_gap_ns: f64,
    next_ns: u64,
}

impl PoissonArrivals {
    /// Arrivals starting at t = 0 with the given mean inter-arrival gap
    /// (so the arrival rate is `1e9 / mean_gap_ns` requests per second).
    /// A zero mean gap is clamped to 1 ns — a zero-gap process would pin
    /// every arrival to the epoch.
    pub fn new(seed: u64, mean_gap_ns: u64) -> Self {
        Self {
            rng: Rng::seed_from_u64(seed),
            mean_gap_ns: (mean_gap_ns.max(1)) as f64,
            next_ns: 0,
        }
    }

    /// The next arrival time in nanoseconds.
    pub fn next_arrival_ns(&mut self) -> u64 {
        // Exponential gap, rounded up so consecutive arrivals are strictly
        // ordered (a batcher keyed on timestamps must see distinct times).
        let gap = self.rng.exp_f64(self.mean_gap_ns).ceil() as u64;
        self.next_ns = self.next_ns.saturating_add(gap.max(1));
        self.next_ns
    }

    /// The first `n` arrival times.
    pub fn take_times(&mut self, n: usize) -> Vec<u64> {
        (0..n).map(|_| self.next_arrival_ns()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_starts_at_zero_and_advances() {
        let c = VirtualClock::new();
        assert_eq!(c.now_ns(), 0);
        assert_eq!(c.advance(10), 10);
        assert_eq!(c.now_ns(), 10);
        assert_eq!(c.advance_to(50), 50);
        // Never rewinds.
        assert_eq!(c.advance_to(20), 50);
        assert_eq!(c.now_ns(), 50);
    }

    #[test]
    fn clones_share_time() {
        let a = VirtualClock::starting_at(7);
        let b = a.clone();
        a.advance(3);
        assert_eq!(b.now_ns(), 10);
        b.advance(5);
        assert_eq!(a.now_ns(), 15);
    }

    #[test]
    fn arrivals_are_strictly_increasing_and_deterministic() {
        let mut a = PoissonArrivals::new(42, 1_000);
        let mut b = PoissonArrivals::new(42, 1_000);
        let ta = a.take_times(500);
        let tb = b.take_times(500);
        assert_eq!(ta, tb, "same seed, same stream");
        for w in ta.windows(2) {
            assert!(w[0] < w[1], "arrivals must be strictly ordered: {w:?}");
        }
        assert_ne!(ta, PoissonArrivals::new(43, 1_000).take_times(500));
    }

    #[test]
    fn mean_gap_is_roughly_honoured() {
        let mut p = PoissonArrivals::new(9, 10_000);
        let n = 20_000;
        let last = p.take_times(n)[n - 1];
        let mean = last as f64 / n as f64;
        assert!(
            (8_000.0..12_000.0).contains(&mean),
            "empirical mean gap {mean} vs configured 10000"
        );
    }

    #[test]
    fn zero_gap_is_clamped() {
        let mut p = PoissonArrivals::new(1, 0);
        let t = p.take_times(10);
        for w in t.windows(2) {
            assert!(w[0] < w[1]);
        }
    }
}
