//! Minimal JSON validity checker.
//!
//! A strict RFC 8259 recogniser — no parse tree, no allocation beyond the
//! recursion — used to assert that machine-emitted artifacts (the
//! `lowino-trace` chrome-trace export, the bench `BENCH_JSON` lines) are
//! well-formed without taking on a JSON dependency. Errors carry the byte
//! offset of the first offending character.

/// Maximum nesting depth accepted before the document is rejected (guards
/// the recursive-descent walker against stack exhaustion on adversarial
/// input; real trace files nest 4 deep).
const MAX_DEPTH: usize = 128;

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn err(&self, what: &str) -> String {
        format!("byte {}: {what}", self.pos)
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.bump() {
            Some(b) if b == want => Ok(()),
            Some(b) => Err(format!(
                "byte {}: expected '{}', found '{}'",
                self.pos - 1,
                want as char,
                b as char
            )),
            None => Err(self.err(&format!("expected '{}', found end of input", want as char))),
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        let start = self.pos;
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(format!("byte {start}: expected literal '{word}'"))
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(()),
                Some(b'\\') => match self.bump() {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {}
                    Some(b'u') => {
                        for _ in 0..4 {
                            match self.bump() {
                                Some(c) if c.is_ascii_hexdigit() => {}
                                _ => return Err(self.err("bad \\u escape (need 4 hex digits)")),
                            }
                        }
                    }
                    _ => return Err(self.err("invalid escape sequence")),
                },
                Some(c) if c < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(_) => {}
            }
        }
    }

    fn digits(&mut self) -> Result<(), String> {
        if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            return Err(self.err("expected digit"));
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        Ok(())
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: 0 alone, or a non-zero digit followed by more.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(c) if c.is_ascii_digit() => self.digits()?,
            _ => return Err(self.err("expected number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            self.digits()?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            self.digits()?;
        }
        Ok(())
    }

    fn value(&mut self, depth: usize) -> Result<(), String> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-') => self.number(),
            Some(c) if c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character '{}'", c as char))),
            None => Err(self.err("expected value, found end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.value(depth + 1)?;
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(()),
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.value(depth + 1)?;
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(()),
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }
}

/// Validate that `s` is exactly one well-formed JSON document (any value
/// type, per RFC 8259). Returns the byte offset and a description of the
/// first violation otherwise.
pub fn validate_json(s: &str) -> Result<(), String> {
    let mut c = Cursor {
        bytes: s.as_bytes(),
        pos: 0,
    };
    c.value(0)?;
    c.skip_ws();
    if c.pos != c.bytes.len() {
        return Err(c.err("trailing characters after JSON document"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_documents() {
        for ok in [
            "{}",
            "[]",
            "null",
            "true",
            " false ",
            "0",
            "-12.5e+3",
            "\"hi\\n\\u00e9\"",
            r#"{"traceEvents":[{"name":"a","ph":"B","ts":1.5,"args":{"x":[1,2,3]}}]}"#,
            "[1, [2, [3, {\"k\": null}]]]",
        ] {
            assert!(validate_json(ok).is_ok(), "rejected valid: {ok}");
        }
    }

    #[test]
    fn rejects_invalid_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "{'a': 1}",
            "01",
            "1.",
            "+1",
            "nul",
            "\"unterminated",
            "\"bad\\q\"",
            "\"bad\\u12g4\"",
            "{} extra",
            "[1 2]",
        ] {
            let err = validate_json(bad);
            assert!(err.is_err(), "accepted invalid: {bad}");
            assert!(
                err.unwrap_err().starts_with("byte "),
                "error must carry a byte offset"
            );
        }
    }

    #[test]
    fn rejects_excessive_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(validate_json(&deep).is_err());
        let fine = "[".repeat(64) + "1" + &"]".repeat(64);
        assert!(validate_json(&fine).is_ok());
    }

    #[test]
    fn rejects_raw_control_chars_in_strings() {
        assert!(validate_json("\"a\u{0001}b\"").is_err());
    }
}
