//! A minimal property-testing harness (the in-tree `proptest` replacement).
//!
//! Design: a [`Strategy`] samples a value from an [`Rng`](crate::Rng) and
//! enumerates shrink candidates; [`run_property`] drives `cases` independent
//! cases, each from its own reproducible seed, and on failure greedily
//! shrinks to a minimal counter-example before panicking with the **case
//! seed** so the exact case can be replayed:
//!
//! ```text
//! LOWINO_PROP_SEED=0x1234abcd cargo test -p lowino failing_property
//! ```
//!
//! With `LOWINO_PROP_SEED` set, case 0 runs with exactly that seed, so a
//! reported seed reproduces the reported counter-example first.
//!
//! The [`property!`](crate::property) macro wraps all of this in a
//! `proptest!`-like surface:
//!
//! ```ignore
//! property! {
//!     #[cases(64)]
//!     fn add_commutes(a in 0u64..100, b in 0u64..100) {
//!         prop_assert!(a + b == b + a, "{a} {b}");
//!     }
//! }
//! ```

use crate::rng::{splitmix64, Rng};
use core::fmt::Debug;
use core::ops::Range;

/// Something that can sample values and propose smaller ones.
pub trait Strategy {
    /// The value type produced.
    type Value: Clone + Debug;

    /// Draw one value.
    fn sample(&self, rng: &mut Rng) -> Self::Value;

    /// Candidate simplifications of `v`, simplest first. An empty vector
    /// means `v` is already minimal.
    fn shrink(&self, v: &Self::Value) -> Vec<Self::Value>;
}

/// Shrink candidates for an integer-like value toward `low`: the low end
/// itself, then binary midpoints approaching `v` from below.
macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut Rng) -> $t {
                debug_assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.bounded_u64(span) as i128) as $t
            }

            fn shrink(&self, v: &$t) -> Vec<$t> {
                let (v, low) = (*v as i128, self.start as i128);
                if v == low {
                    return Vec::new();
                }
                let mut out = vec![low as $t];
                // Halve the distance: low + d/2, low + 3d/4, ... , v-1.
                let d = v - low;
                for frac in [2, 4] {
                    let c = v - d / frac;
                    if c != low && c != v {
                        out.push(c as $t);
                    }
                }
                if v - 1 != low && !out.contains(&((v - 1) as $t)) {
                    out.push((v - 1) as $t);
                }
                out
            }
        }
    )*};
}

int_strategy!(u8, i8, u16, i16, u32, i32, u64, i64, usize, isize);

impl Strategy for Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut Rng) -> f32 {
        rng.f32_range(self.start, self.end)
    }

    fn shrink(&self, v: &f32) -> Vec<f32> {
        // Toward the low end; floats don't need fine-grained minimality.
        let low = self.start;
        if *v == low {
            return Vec::new();
        }
        let mid = low + (v - low) * 0.5;
        if mid == *v || mid == low {
            vec![low]
        } else {
            vec![low, mid]
        }
    }
}

/// Uniform choice from a fixed list; shrinks toward the first element.
#[derive(Debug, Clone)]
pub struct OneOf<T: Clone + Debug + PartialEq + 'static>(pub &'static [T]);

/// `proptest`'s `prop::sample::select` equivalent.
pub fn one_of<T: Clone + Debug + PartialEq + 'static>(choices: &'static [T]) -> OneOf<T> {
    assert!(!choices.is_empty(), "one_of: empty choice list");
    OneOf(choices)
}

impl<T: Clone + Debug + PartialEq + 'static> Strategy for OneOf<T> {
    type Value = T;

    fn sample(&self, rng: &mut Rng) -> T {
        rng.choose(self.0).clone()
    }

    fn shrink(&self, v: &T) -> Vec<T> {
        // Earlier choices are simpler.
        let idx = self.0.iter().position(|c| c == v).unwrap_or(0);
        self.0[..idx].to_vec()
    }
}

/// Vectors of `elem`-generated values with length drawn from `len`.
/// Shrinks by dropping chunks/elements, then by shrinking elements.
#[derive(Debug, Clone)]
pub struct VecOf<S> {
    elem: S,
    len: Range<usize>,
}

/// Strategy for a `Vec` of values.
pub fn vec_of<S: Strategy>(elem: S, len: Range<usize>) -> VecOf<S> {
    VecOf { elem, len }
}

impl<S: Strategy> Strategy for VecOf<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut Rng) -> Vec<S::Value> {
        let n = rng.range_usize(self.len.start, self.len.end);
        (0..n).map(|_| self.elem.sample(rng)).collect()
    }

    fn shrink(&self, v: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let mut out = Vec::new();
        let min = self.len.start;
        // Structural shrinks first: halve, then drop each single position.
        if v.len() > min {
            let half = (v.len() / 2).max(min);
            if half < v.len() {
                out.push(v[..half].to_vec());
            }
            for i in 0..v.len() {
                let mut dropped = v.clone();
                dropped.remove(i);
                out.push(dropped);
            }
        }
        // Element-wise shrinks (the runner's budget caps the frontier).
        for (i, e) in v.iter().enumerate() {
            for smaller in self.elem.shrink(e) {
                let mut copy = v.clone();
                copy[i] = smaller;
                out.push(copy);
            }
        }
        out
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident / $v:ident / $i:tt),+);)+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut Rng) -> Self::Value {
                ($(self.$i.sample(rng),)+)
            }

            fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$i.shrink(&v.$i) {
                        let mut copy = v.clone();
                        copy.$i = cand;
                        out.push(copy);
                    }
                )+
                out
            }
        }
    )+};
}

tuple_strategy! {
    (A/a/0);
    (A/a/0, B/b/1);
    (A/a/0, B/b/1, C/c/2);
    (A/a/0, B/b/1, C/c/2, D/d/3);
    (A/a/0, B/b/1, C/c/2, D/d/3, E/e/4);
    (A/a/0, B/b/1, C/c/2, D/d/3, E/e/4, F/f/5);
    (A/a/0, B/b/1, C/c/2, D/d/3, E/e/4, F/f/5, G/g/6);
    (A/a/0, B/b/1, C/c/2, D/d/3, E/e/4, F/f/5, G/g/6, H/h/7);
}

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of independent cases to run.
    pub cases: u32,
    /// Base seed; per-case seeds are derived from it. Overridden by the
    /// `LOWINO_PROP_SEED` environment variable (decimal or `0x`-hex).
    pub seed: u64,
    /// Cap on shrink iterations after a failure.
    pub max_shrinks: u32,
}

impl Default for Config {
    fn default() -> Self {
        let seed = std::env::var("LOWINO_PROP_SEED")
            .ok()
            .and_then(|s| parse_seed(&s))
            .unwrap_or(0xB0B0_5EED);
        Self {
            cases: 32,
            seed,
            max_shrinks: 512,
        }
    }
}

fn parse_seed(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// Seed of case `i` under base seed `base`. Case 0 uses `base` itself so a
/// reported seed replays directly via `LOWINO_PROP_SEED`.
#[inline]
pub fn case_seed(base: u64, i: u32) -> u64 {
    if i == 0 {
        base
    } else {
        let mut s = base ^ u64::from(i).wrapping_mul(0xA076_1D64_78BD_642F);
        splitmix64(&mut s)
    }
}

/// Run `prop` over `cfg.cases` sampled values. Panics on the first failing
/// case after shrinking it, reporting the case seed, the (shrunk)
/// counter-example, and the property's message.
pub fn run_property<S: Strategy>(
    name: &str,
    cfg: &Config,
    strat: &S,
    prop: impl Fn(&S::Value) -> Result<(), String>,
) {
    for i in 0..cfg.cases {
        let seed = case_seed(cfg.seed, i);
        let mut rng = Rng::seed_from_u64(seed);
        let value = strat.sample(&mut rng);
        if let Err(msg) = prop(&value) {
            let (minimal, min_msg, shrinks) = shrink_failure(cfg, strat, &prop, value, msg);
            panic!(
                "property `{name}` failed (case {i}/{cases}, seed 0x{seed:x}; replay with \
                 LOWINO_PROP_SEED=0x{seed:x})\n  counter-example (after {shrinks} shrinks): \
                 {minimal:?}\n  error: {min_msg}",
                cases = cfg.cases,
            );
        }
    }
}

/// Greedy shrink: repeatedly take the first candidate that still fails.
fn shrink_failure<S: Strategy>(
    cfg: &Config,
    strat: &S,
    prop: &impl Fn(&S::Value) -> Result<(), String>,
    mut value: S::Value,
    mut msg: String,
) -> (S::Value, String, u32) {
    let mut shrinks = 0;
    let mut budget = cfg.max_shrinks;
    'outer: while budget > 0 {
        for cand in strat.shrink(&value) {
            budget -= 1;
            if let Err(m) = prop(&cand) {
                value = cand;
                msg = m;
                shrinks += 1;
                continue 'outer;
            }
            if budget == 0 {
                break;
            }
        }
        break;
    }
    (value, msg, shrinks)
}

/// Define a `#[test]` that runs a property over sampled inputs.
///
/// ```ignore
/// property! {
///     #[cases(100)]
///     fn name(x in 0i32..10, v in vec_of(0u8..255, 0..64)) { ... }
/// }
/// ```
///
/// The body may use [`prop_assert!`](crate::prop_assert) (or return early
/// with `return Err(...)`); falling off the end means the case passed.
///
/// Doc comments may appear before the `#[cases(..)]` attribute and are
/// forwarded onto the generated test function.
#[macro_export]
macro_rules! property {
    ($(
        $(#[doc $($doc:tt)*])*
        $(#[cases($cases:expr)])?
        fn $name:ident( $($var:ident in $strat:expr),+ $(,)? ) $body:block
    )+) => {$(
        $(#[doc $($doc)*])*
        #[test]
        fn $name() {
            #[allow(unused_mut)]
            let mut cfg = $crate::prop::Config::default();
            $(cfg.cases = $cases;)?
            let strat = ( $($strat,)+ );
            $crate::prop::run_property(
                stringify!($name),
                &cfg,
                &strat,
                |value: &_| -> ::core::result::Result<(), ::std::string::String> {
                    let ( $($var,)+ ) = ::core::clone::Clone::clone(value);
                    $(let _ = &$var;)+
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                },
            );
        }
    )+};
}

/// `assert!` for property bodies: evaluates to `return Err(..)` on failure
/// so the harness can shrink and report instead of unwinding mid-case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(cases: u32) -> Config {
        Config {
            cases,
            seed: 0xC0FFEE,
            max_shrinks: 512,
        }
    }

    #[test]
    fn passing_property_runs_all_cases() {
        let counter = std::cell::Cell::new(0u32);
        run_property("p", &cfg(17), &(0u64..100), |_| {
            counter.set(counter.get() + 1);
            Ok(())
        });
        assert_eq!(counter.get(), 17);
    }

    #[test]
    fn failing_property_reports_seed_and_shrinks() {
        let err = std::panic::catch_unwind(|| {
            run_property("gt_10", &cfg(64), &(0u64..1000), |&v| {
                if v >= 10 {
                    Err(format!("{v} too big"))
                } else {
                    Ok(())
                }
            });
        })
        .expect_err("property must fail");
        let msg = err.downcast_ref::<String>().expect("panic message");
        assert!(msg.contains("LOWINO_PROP_SEED=0x"), "{msg}");
        // Greedy shrink must reach the boundary counter-example.
        assert!(msg.contains("counter-example"), "{msg}");
        assert!(msg.contains("10"), "{msg}");
    }

    #[test]
    fn shrink_reaches_minimal_int() {
        // From any failing start, shrinking v >= 25 should land exactly 25.
        let strat = 0i32..1_000_000;
        let prop = |v: &i32| {
            if *v >= 25 {
                Err("big".into())
            } else {
                Ok(())
            }
        };
        let (min, _, _) = shrink_failure(&cfg(1), &strat, &prop, 999_999, "big".into());
        assert_eq!(min, 25);
    }

    #[test]
    fn shrink_reaches_minimal_vec() {
        let strat = vec_of(0u8..255, 0..64);
        // Fails iff the vec contains any element >= 100.
        let prop = |v: &Vec<u8>| {
            if v.iter().any(|&e| e >= 100) {
                Err("has big".into())
            } else {
                Ok(())
            }
        };
        let start = vec![3, 200, 7, 150, 9, 9, 9];
        let (min, _, _) = shrink_failure(&cfg(1), &strat, &prop, start, "x".into());
        assert_eq!(min, vec![100]);
    }

    #[test]
    fn case_seed_replays_case_zero() {
        assert_eq!(case_seed(42, 0), 42);
        assert_ne!(case_seed(42, 1), case_seed(42, 2));
    }

    #[test]
    fn one_of_shrinks_toward_head() {
        static CHOICES: [usize; 3] = [2, 4, 6];
        let s = one_of(&CHOICES);
        assert_eq!(s.shrink(&6), vec![2, 4]);
        assert!(s.shrink(&2).is_empty());
        let mut rng = Rng::seed_from_u64(1);
        for _ in 0..50 {
            assert!(CHOICES.contains(&s.sample(&mut rng)));
        }
    }

    property! {
        #[cases(40)]
        fn macro_surface_works(a in 0u32..50, b in 0u32..50, m in one_of(&[2usize, 4])) {
            prop_assert!(a + b < 100);
            prop_assert!(m == 2 || m == 4, "m={m}");
        }
    }
}
