//! `lowino-testkit` — the in-tree test substrate that lets the whole
//! workspace build and test **hermetically**: no registry, no network, no
//! third-party crates.
//!
//! Four pieces, each replacing an external dev-dependency the build
//! environment cannot fetch:
//!
//! * [`rng`] — deterministic xoshiro256++ PRNG (replaces `rand`) for
//!   synthetic data, weight init and shuffles;
//! * [`prop`] — a property-testing harness with per-case seeds, greedy
//!   shrinking and seed-replay via `LOWINO_PROP_SEED` (replaces
//!   `proptest`);
//! * [`bench`] — a warmup + median-of-samples micro-bench timer with
//!   JSON-line output (replaces `criterion`);
//! * [`json`] — a strict JSON validity checker (replaces `serde_json` for
//!   the "is this emitted artifact well-formed?" assertions);
//! * [`faults`] — the fault-injection registry: named sites compiled into
//!   the production crates (zero-cost while disarmed), armed by tests or
//!   `LOWINO_FAULT` to prove the graceful-degradation paths;
//! * [`clock`] — virtual time ([`clock::VirtualClock`]) and a seeded
//!   Poisson arrival stream ([`clock::PoissonArrivals`]) so the serving
//!   stack's deadline/batching state machine is testable deterministically.
//!
//! Correctness of the numeric kernels is LoWino's whole claim (bit-exact
//! integer semantics across SIMD tiers, bounded Winograd-domain
//! quantization error), so the substrate that *verifies* those claims must
//! itself be deterministic and always runnable — hence first-party and
//! dependency-free.

pub mod bench;
pub mod clock;
pub mod faults;
pub mod json;
pub mod prop;
pub mod rng;

pub use bench::{black_box, percentile_ns, BenchGroup, LoadStats, Stats};
pub use clock::{PoissonArrivals, VirtualClock};
pub use json::validate_json;
pub use prop::{one_of, run_property, vec_of, Config, Strategy};
pub use rng::{splitmix64, Rng};
