//! Fault-injection registry: named injection sites compiled into the
//! production crates, armed only by tests or the `LOWINO_FAULT` environment
//! variable.
//!
//! Robustness claims ("a worker panic does not wedge the pool", "a crash
//! mid-save never corrupts the wisdom file") are untestable without a way to
//! *cause* the failure on demand. Each [`FaultSite`] is a static the
//! production code probes at the exact point where the real failure would
//! occur; what a triggered fault *does* (panic, early return, degraded
//! result) is decided by the probing crate, so the registry itself stays a
//! pure arming/counting mechanism.
//!
//! ## Overhead discipline
//!
//! Same zero-cost contract as `lowino-trace`: while a site is disarmed,
//! [`FaultSite::fire`] is **one relaxed atomic load and an untaken branch**
//! — no allocation, no TLS, no synchronisation. The zero-steady-state-
//! allocation guarantee of the executor path is unaffected by compiled-in
//! disarmed sites.
//!
//! ## Arming
//!
//! * programmatically: [`FaultSite::arm`] / [`FaultSite::arm_nth`] /
//!   [`FaultSite::arm_keyed`] (tests);
//! * from the environment: `LOWINO_FAULT=<site>[:<nth>][,<site>[:<nth>]…]`
//!   via [`init_from_env`] (CI smoke runs). `nth` is 1-based: the n-th
//!   matching [`fire`](FaultSite::fire) call triggers.
//!
//! Every site is **one-shot**: it disarms itself when it triggers, so a
//! demotion path recovers on retry instead of failing forever.
//!
//! The site list is a closed registry ([`all`]) so tests can iterate and
//! assert the disarmed state, and so `LOWINO_FAULT` typos fail loudly.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Once;

/// Key wildcard: matches every `fire_keyed` call (and plain `fire`).
pub const ANY_KEY: u64 = u64::MAX;

/// One named injection site.
///
/// All state is atomic so sites can live in statics and be probed from any
/// worker thread without locks.
pub struct FaultSite {
    name: &'static str,
    /// Fast gate — the only thing a disarmed `fire` reads.
    armed: AtomicBool,
    /// Matching `fire` calls remaining before the trigger (1 ⇒ next call).
    countdown: AtomicU64,
    /// Key filter; [`ANY_KEY`] matches everything.
    key: AtomicU64,
    /// Times this site has triggered since process start.
    hits: AtomicU64,
}

impl FaultSite {
    /// A disarmed site (const so sites can be statics).
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            armed: AtomicBool::new(false),
            countdown: AtomicU64::new(0),
            key: AtomicU64::new(ANY_KEY),
            hits: AtomicU64::new(0),
        }
    }

    /// The site's registry name (e.g. `"pool/phase"`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Arm so the **next** matching [`fire`](Self::fire) triggers.
    pub fn arm(&self) {
        self.arm_nth(1);
    }

    /// Arm so the `nth` matching call triggers (1-based; 0 is clamped to 1).
    pub fn arm_nth(&self, nth: u64) {
        self.key.store(ANY_KEY, Ordering::Relaxed);
        self.countdown.store(nth.max(1), Ordering::Relaxed);
        self.armed.store(true, Ordering::Release);
    }

    /// Arm so the next [`fire_keyed`](Self::fire_keyed) with exactly this
    /// key triggers (calls with other keys pass through untriggered).
    pub fn arm_keyed(&self, key: u64) {
        self.key.store(key, Ordering::Relaxed);
        self.countdown.store(1, Ordering::Relaxed);
        self.armed.store(true, Ordering::Release);
    }

    /// Disarm without triggering.
    pub fn disarm(&self) {
        self.armed.store(false, Ordering::Release);
    }

    /// Is the site currently armed?
    pub fn is_armed(&self) -> bool {
        self.armed.load(Ordering::Acquire)
    }

    /// Times this site has triggered since process start.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Acquire)
    }

    /// Probe the site: `true` exactly when the armed fault elects this call
    /// as the failure point. Disarmed cost: one relaxed load.
    #[inline]
    pub fn fire(&self) -> bool {
        if !self.armed.load(Ordering::Relaxed) {
            return false;
        }
        self.fire_slow(ANY_KEY)
    }

    /// [`fire`](Self::fire) with a caller-chosen key (e.g. a packed
    /// `(worker, phase)`) so tests can target one specific visit of a site
    /// that is probed from many places.
    #[inline]
    pub fn fire_keyed(&self, key: u64) -> bool {
        if !self.armed.load(Ordering::Relaxed) {
            return false;
        }
        self.fire_slow(key)
    }

    /// Slow path, reached only while armed. Exactly one caller observes the
    /// 1→0 countdown transition, triggers, and disarms the site.
    #[cold]
    fn fire_slow(&self, key: u64) -> bool {
        let want = self.key.load(Ordering::Relaxed);
        if want != ANY_KEY && key != want {
            return false;
        }
        let elected = self
            .countdown
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |c| c.checked_sub(1))
            .is_ok_and(|prev| prev == 1);
        if elected {
            self.armed.store(false, Ordering::Release);
            self.hits.fetch_add(1, Ordering::AcqRel);
        }
        elected
    }
}

/// Simulated crash while persisting the GEMM wisdom file (probed between
/// the partial write and the atomic rename in `Wisdom::save`).
pub static WISDOM_SAVE: FaultSite = FaultSite::new("wisdom/save");

/// Worker panic inside a fork-join phase body (probed per `(worker, phase)`
/// visit in the pool's phase loop; key = `worker << 32 | phase`).
pub static POOL_PHASE: FaultSite = FaultSite::new("pool/phase");

/// Simulated allocation failure while growing a per-worker scratch buffer.
pub static SCRATCH_GROW: FaultSite = FaultSite::new("scratch/grow");

/// Poisoned calibration sample set (probed at calibration entry; the conv
/// crate converts a trigger into `ConvError::Calibration`).
pub static CALIBRATE_SAMPLES: FaultSite = FaultSite::new("calibrate/samples");

/// CPU-feature detection failure (probed in `SimdTier::detect`; a trigger
/// degrades detection to the scalar tier).
pub static TIER_DETECT: FaultSite = FaultSite::new("tier/detect");

/// Liveness-planner failure during graph compilation (probed in the nn
/// crate's arena planner; a trigger degrades the plan to the
/// no-offset-reuse disjoint layout instead of failing the compile).
pub static GRAPH_PLAN: FaultSite = FaultSite::new("graph/plan");

/// Shard worker death at (re)spawn: probed at shard-worker entry in
/// `lowino-serve` before the model is built; a trigger panics the worker
/// thread, which the supervisor must detect and respawn with backoff.
pub static SHARD_SPAWN: FaultSite = FaultSite::new("shard/spawn");

/// Shard worker wedge: probed after a shard worker claims a batch and
/// before it runs inference; a trigger makes the worker stop heartbeating
/// (it parks until the supervisor abandons it), simulating a hang the
/// supervisor must detect, steal the in-flight batch from, and respawn
/// around.
pub static SHARD_WEDGE: FaultSite = FaultSite::new("shard/wedge");

/// Every registered site (closed set — `LOWINO_FAULT` typos fail loudly).
pub fn all() -> [&'static FaultSite; 8] {
    [
        &WISDOM_SAVE,
        &POOL_PHASE,
        &SCRATCH_GROW,
        &CALIBRATE_SAMPLES,
        &TIER_DETECT,
        &GRAPH_PLAN,
        &SHARD_SPAWN,
        &SHARD_WEDGE,
    ]
}

/// Look a site up by its registry name.
pub fn by_name(name: &str) -> Option<&'static FaultSite> {
    all().into_iter().find(|s| s.name == name)
}

/// Disarm every site (test hygiene between cases).
pub fn disarm_all() {
    for site in all() {
        site.disarm();
    }
}

/// Arm sites from a `LOWINO_FAULT`-style spec:
/// `<site>[:<nth>][,<site>[:<nth>]…]`.
///
/// Returns an error for unknown sites or unparseable counts — a fault run
/// whose fault never armed would silently test nothing.
pub fn arm_from_spec(spec: &str) -> Result<(), String> {
    for part in spec.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (name, nth) = match part.split_once(':') {
            Some((name, nth)) => {
                let nth: u64 = nth
                    .parse()
                    .map_err(|e| format!("LOWINO_FAULT {part:?}: bad count: {e}"))?;
                (name, nth)
            }
            None => (part, 1),
        };
        let site = by_name(name).ok_or_else(|| {
            let names: Vec<&str> = all().iter().map(|s| s.name).collect();
            format!("LOWINO_FAULT {part:?}: unknown site (expected one of {names:?})")
        })?;
        site.arm_nth(nth);
    }
    Ok(())
}

/// One-time arming from the `LOWINO_FAULT` environment variable. Idempotent
/// and cheap to call from every entry point (pool construction, bench
/// mains). A malformed spec panics — silently ignoring it would run a
/// "fault" smoke with no fault armed.
pub fn init_from_env() {
    static INIT: Once = Once::new();
    INIT.call_once(|| {
        if let Ok(spec) = std::env::var("LOWINO_FAULT") {
            if !spec.is_empty() {
                if let Err(e) = arm_from_spec(&spec) {
                    panic!("{e}");
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A private site so tests don't race the shared registry statics.
    static T: FaultSite = FaultSite::new("test/site");

    #[test]
    fn disarmed_never_fires() {
        T.disarm();
        for _ in 0..100 {
            assert!(!T.fire());
        }
        assert_eq!(T.hits(), 0);
    }

    #[test]
    fn registry_is_closed_and_named() {
        for site in all() {
            assert!(!site.is_armed(), "{} armed at startup", site.name());
            assert!(by_name(site.name()).is_some());
        }
        assert!(by_name("nope/nope").is_none());
        assert_eq!(POOL_PHASE.name(), "pool/phase");
    }

    #[test]
    fn nth_counts_matching_calls_and_one_shots() {
        static S: FaultSite = FaultSite::new("test/nth");
        S.arm_nth(3);
        assert!(!S.fire());
        assert!(!S.fire());
        assert!(S.fire(), "third call must trigger");
        assert!(!S.is_armed(), "trigger must disarm");
        assert!(!S.fire(), "one-shot: no re-trigger");
        assert_eq!(S.hits(), 1);
    }

    #[test]
    fn keyed_arming_ignores_other_keys() {
        static S: FaultSite = FaultSite::new("test/key");
        S.arm_keyed(42);
        assert!(!S.fire_keyed(7));
        assert!(!S.fire_keyed(41));
        assert!(S.fire_keyed(42));
        assert!(!S.fire_keyed(42), "one-shot");
        assert_eq!(S.hits(), 1);
    }

    #[test]
    fn concurrent_fires_elect_exactly_one_winner() {
        static S: FaultSite = FaultSite::new("test/race");
        for round in 0..50 {
            S.arm_nth(8);
            let triggers: u64 = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..4)
                    .map(|_| {
                        scope.spawn(|| (0..16).filter(|_| S.fire()).count() as u64)
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum()
            });
            assert_eq!(triggers, 1, "round {round}: exactly one thread wins");
            S.disarm();
        }
    }

    #[test]
    fn spec_parsing() {
        // Use real registry sites but leave them disarmed on exit.
        assert!(arm_from_spec("wisdom/save").is_ok());
        assert!(WISDOM_SAVE.is_armed());
        WISDOM_SAVE.disarm();
        assert!(arm_from_spec("pool/phase:5,tier/detect").is_ok());
        assert!(POOL_PHASE.is_armed() && TIER_DETECT.is_armed());
        POOL_PHASE.disarm();
        TIER_DETECT.disarm();
        assert!(arm_from_spec("bogus/site").is_err());
        assert!(arm_from_spec("pool/phase:x").is_err());
        assert!(arm_from_spec("").is_ok());
    }
}
