//! Property tests for the phased fork-join: a `run_phases` schedule must be
//! indistinguishable from running the phases sequentially — every task of
//! every phase executes exactly once, phases are totally ordered by the
//! in-pool barrier, and the whole schedule costs exactly one fork-join —
//! for any (threads, phases, totals) shape. A panicking phase body must
//! surface the panic on the caller and leave the pool usable.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use lowino_parallel::{run_static_phases, StaticPool};
use lowino_testkit::prop::vec_of;
use lowino_testkit::{prop_assert, property};

/// A task-distinguishing value so lost/duplicated/misrouted tasks are
/// detectable, not just counted.
fn mix(phase: usize, task: usize) -> usize {
    phase
        .wrapping_mul(0x9E37_79B9)
        .wrapping_add(task.wrapping_mul(31))
        ^ (task >> 3)
}

/// Shared observation state for one schedule run.
struct Trace {
    /// One slot per (phase, task); `usize::MAX` = never executed.
    slots: Vec<Vec<AtomicUsize>>,
    /// Tasks completed per phase.
    done: Vec<AtomicUsize>,
    /// Set if any phase body started before the previous phase finished.
    order_violated: AtomicBool,
}

impl Trace {
    fn new(totals: &[usize]) -> Self {
        Self {
            slots: totals
                .iter()
                .map(|&t| (0..t).map(|_| AtomicUsize::new(usize::MAX)).collect())
                .collect(),
            done: totals.iter().map(|_| AtomicUsize::new(0)).collect(),
            order_violated: AtomicBool::new(false),
        }
    }

    fn body(&self, totals: &[usize], phase: usize, range: std::ops::Range<usize>) {
        if phase > 0 && self.done[phase - 1].load(Ordering::SeqCst) != totals[phase - 1] {
            self.order_violated.store(true, Ordering::SeqCst);
        }
        for task in range {
            self.slots[phase][task].store(mix(phase, task), Ordering::SeqCst);
            self.done[phase].fetch_add(1, Ordering::SeqCst);
        }
    }

    fn check(&self, totals: &[usize]) -> Result<(), String> {
        if self.order_violated.load(Ordering::SeqCst) {
            return Err("a phase started before the previous phase finished".into());
        }
        for (phase, &total) in totals.iter().enumerate() {
            let done = self.done[phase].load(Ordering::SeqCst);
            if done != total {
                return Err(format!("phase {phase}: {done}/{total} tasks ran"));
            }
            for task in 0..total {
                let got = self.slots[phase][task].load(Ordering::SeqCst);
                if got != mix(phase, task) {
                    return Err(format!("phase {phase} task {task}: slot holds {got}"));
                }
            }
        }
        Ok(())
    }
}

property! {
    /// `StaticPool::run_phases` over arbitrary (threads, totals) shapes is
    /// equivalent to sequential phase-by-phase execution, and the whole
    /// multi-phase schedule is exactly one fork-join.
    #[cases(48)]
    fn pool_run_phases_matches_sequential(
        threads in 1usize..6,
        totals in vec_of(0usize..48, 0..5),
    ) {
        let mut pool = StaticPool::new(threads);
        let trace = Trace::new(&totals);
        let before = pool.fork_joins();
        let times = pool.run_phases(&totals, |_, phase, range| {
            trace.body(&totals, phase, range);
        });
        prop_assert!(
            pool.fork_joins() - before == 1,
            "run_phases must count as exactly one fork-join"
        );
        prop_assert!(
            times.len() == totals.len(),
            "one timing per phase: {} vs {}",
            times.len(),
            totals.len()
        );
        trace.check(&totals)?;
    }

    /// The pool-less `run_static_phases` entry point upholds the same
    /// contract (it shares the phase loop, not the worker machinery).
    #[cases(32)]
    fn run_static_phases_matches_sequential(
        threads in 1usize..5,
        totals in vec_of(0usize..32, 0..4),
    ) {
        let trace = Trace::new(&totals);
        run_static_phases(threads, &totals, |_, phase, range| {
            trace.body(&totals, phase, range);
        });
        trace.check(&totals)?;
    }
}

/// A panic in any phase, at any thread count, must propagate to the caller
/// and leave the pool fully functional — workers re-parked, no wedged
/// barrier, next job runs normally.
#[test]
fn panic_in_any_phase_leaves_pool_usable() {
    for threads in [1, 2, 4] {
        for panic_phase in 0..3usize {
            let mut pool = StaticPool::new(threads);
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                pool.run_phases(&[8, 8, 8], |_, phase, _range| {
                    if phase == panic_phase {
                        panic!("boom in phase {panic_phase}");
                    }
                });
            }));
            assert!(
                result.is_err(),
                "panic in phase {panic_phase} must reach the caller (threads={threads})"
            );

            // The pool must still complete fresh jobs afterwards.
            let sum = AtomicUsize::new(0);
            pool.run(100, |_, range| {
                sum.fetch_add(range.sum::<usize>(), Ordering::SeqCst);
            });
            assert_eq!(
                sum.load(Ordering::SeqCst),
                4950,
                "pool wedged after panic in phase {panic_phase} (threads={threads})"
            );
        }
    }
}
