//! Properties of the bounded intra-phase work-stealing scheduler.
//!
//! The load-bearing invariant is *exactly-once execution*: however pops and
//! steals interleave, every task index seeded into [`StealQueues`] is
//! claimed by exactly one `pop` — that is what keeps the executors' unsafe
//! disjoint-write panels race-free under dynamic scheduling. The
//! interleaving property drives the queues directly with a testkit-PRNG
//! schedule (replayable via `LOWINO_PROP_SEED`); the pool-level tests prove
//! the same through `StaticPool::run_phases`, including a panic landing
//! mid-steal via the `pool/phase` fault site.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use lowino_parallel::{chunk_was_stolen, phase_fault_key, StaticPool, StealQueues};
use lowino_testkit::prop::vec_of;
use lowino_testkit::{prop_assert, property, Rng};

property! {
    /// Randomized steal interleavings claim every seeded task exactly once,
    /// for arbitrary worker counts and arbitrarily skewed seed partitions
    /// (including workers seeded empty, who can only ever steal).
    #[cases(96)]
    fn every_task_claimed_exactly_once(
        seed in 0u64..u64::MAX,
        lens in vec_of(0usize..40, 1..6),
    ) {
        let workers = lens.len();
        let queues = StealQueues::new(workers);
        let mut plan = Vec::with_capacity(workers);
        let mut start = 0usize;
        for &len in &lens {
            plan.push(start..start + len);
            start += len;
        }
        let total = start;
        queues.reset(&plan);

        let mut rng = Rng::seed_from_u64(seed);
        let mut claimed = vec![0u32; total];
        // Random interleaving: any worker may pop at any step. A worker
        // whose pop returns None may become productive again only if new
        // work appeared — it cannot here, but re-polling exercised the
        // drained path, so keep polling everyone until a full idle sweep.
        loop {
            let mut progressed = false;
            // Random burst of pops from random workers…
            for _ in 0..(1 + rng.range_usize(0, 2 * workers)) {
                let w = rng.range_usize(0, workers);
                if let Some(chunk) = queues.pop(w) {
                    progressed = true;
                    for i in chunk.range {
                        claimed[i] += 1;
                    }
                }
            }
            if progressed {
                continue;
            }
            // …then a deterministic sweep: only stop once *every* worker
            // reports empty back-to-back.
            let drained = (0..workers).all(|w| {
                match queues.pop(w) {
                    None => true,
                    Some(chunk) => {
                        for i in chunk.range {
                            claimed[i] += 1;
                        }
                        false
                    }
                }
            });
            if drained {
                break;
            }
        }
        for (i, &n) in claimed.iter().enumerate() {
            prop_assert!(n == 1, "task {i} claimed {n} times (lens={lens:?})");
        }
    }
}

/// Through the real pool: a phase whose first static chunk stalls hands the
/// rest of that worker's partition to thieves; every task still runs exactly
/// once and at least one chunk is observed as stolen.
#[test]
fn pool_steals_from_a_stalled_worker() {
    let mut pool = StaticPool::new(2);
    let hits: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
    let saw_stolen = AtomicBool::new(false);
    pool.run_phases(&[64], |_, _, range| {
        if chunk_was_stolen() {
            saw_stolen.store(true, Ordering::SeqCst);
        }
        // Worker 0's own first chunk contains task 0: parking it hands the
        // tail of partition 0 to worker 1's thief.
        if range.contains(&0) {
            std::thread::sleep(std::time::Duration::from_millis(25));
        }
        for i in range {
            hits[i].fetch_add(1, Ordering::SeqCst);
        }
    });
    assert!(
        hits.iter().all(|h| h.load(Ordering::SeqCst) == 1),
        "stealing lost or duplicated a task"
    );
    assert!(
        saw_stolen.load(Ordering::SeqCst),
        "a 25ms stall on worker 0 must trigger at least one steal"
    );
}

/// A `pool/phase` fault firing on a worker's chunk loop — i.e. a panic while
/// the other workers are actively popping and stealing the same phase —
/// surfaces as a typed `JobPanic` and leaves the pool fully reusable.
#[test]
fn panic_mid_steal_leaves_pool_reusable() {
    use lowino_testkit::faults::POOL_PHASE;
    let mut pool = StaticPool::new(3);
    POOL_PHASE.arm_keyed(phase_fault_key(1, 0));
    let err = pool
        .run_phases_catching(&[96], |_, _, range| {
            // Enough work per chunk that the survivors are still draining
            // (and stealing worker 1's abandoned remainder) when the armed
            // fault fires.
            for i in range {
                std::hint::black_box(i);
            }
        })
        .expect_err("armed pool/phase fault must trigger");
    assert!(
        err.message.contains("injected fault: pool/phase"),
        "got: {err}"
    );
    assert!(!POOL_PHASE.is_armed(), "fault is one-shot");

    // The pool must be immediately reusable, with exactly-once coverage.
    let hits: Vec<AtomicUsize> = (0..96).map(|_| AtomicUsize::new(0)).collect();
    pool.run_phases(&[96], |_, _, range| {
        for i in range {
            hits[i].fetch_add(1, Ordering::SeqCst);
        }
    });
    assert!(
        hits.iter().all(|h| h.load(Ordering::SeqCst) == 1),
        "pool unhealthy after mid-steal panic"
    );
}
