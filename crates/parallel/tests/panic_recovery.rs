//! Pool panic-recovery property: an injected panic at a *random*
//! `(worker, phase)` — armed through the `pool/phase` fault site, exactly the
//! probe the production phase loop carries — must surface from
//! `run_phases_catching` as a typed [`JobPanic`] (never unwind into the
//! harness), and the very same pool must then complete a clean job
//! **bitwise-identically** to a fresh pool.
//!
//! Integration test = own process, so arming the process-global fault site
//! races with nothing; the property harness runs cases sequentially.

use std::sync::atomic::{AtomicU32, Ordering};

use lowino_parallel::{phase_fault_key, StaticPool};
use lowino_testkit::faults::{disarm_all, POOL_PHASE};
use lowino_testkit::{prop_assert, property};

/// A deterministic float-producing job: phase `p` combines each cell with a
/// task-dependent value via non-associative f32 arithmetic, so any
/// scheduling difference between two pools would show up in the bits.
fn clean_job(pool: &mut StaticPool, totals: &[usize; 3], cells: &[AtomicU32]) {
    pool.run_phases_catching(totals, |_, phase, range| {
        for i in range {
            let prev = f32::from_bits(cells[i].load(Ordering::SeqCst));
            let x = (i as f32 + 1.0) * 0.1 + phase as f32 * 0.731;
            let next = prev + x.sin() * 1.0e-3 + prev * 1.0e-7;
            cells[i].store(next.to_bits(), Ordering::SeqCst);
        }
    })
    .expect("clean job must succeed");
}

fn run_clean(pool: &mut StaticPool, totals: &[usize; 3]) -> Vec<u32> {
    let cells: Vec<AtomicU32> = (0..totals[0]).map(|_| AtomicU32::new(0)).collect();
    clean_job(pool, totals, &cells);
    cells.into_iter().map(AtomicU32::into_inner).collect()
}

property! {
    /// For any pool width and any (worker, phase) fault target: the injected
    /// panic surfaces as `JobPanic`, the fault one-shots, and the recovered
    /// pool's next clean job is bit-for-bit the fresh pool's.
    #[cases(32)]
    fn injected_panic_recovers_bitwise(
        threads in 1usize..6,
        worker_pick in 0usize..8,
        phase in 0usize..3,
    ) {
        disarm_all();
        let worker = worker_pick % threads;
        let totals = [64usize, 64, 64];
        let mut pool = StaticPool::new(threads);

        POOL_PHASE.arm_keyed(phase_fault_key(worker, phase));
        let hits_before = POOL_PHASE.hits();
        let err = pool.run_phases_catching(&totals, |_, _, _| {});
        let err = match err {
            Err(e) => e,
            Ok(_) => {
                return Err(format!(
                    "armed fault (worker {worker}, phase {phase}, threads {threads}) \
                     did not trigger"
                ));
            }
        };
        prop_assert!(
            err.message.contains("injected fault: pool/phase"),
            "unexpected panic message: {}",
            err.message
        );
        prop_assert!(!POOL_PHASE.is_armed(), "triggered fault must disarm itself");
        prop_assert!(
            POOL_PHASE.hits() == hits_before + 1,
            "exactly one trigger per armed fault"
        );

        // Same pool, clean job, vs a fresh pool of the same width: bitwise.
        let recovered = run_clean(&mut pool, &totals);
        let mut fresh = StaticPool::new(threads);
        let reference = run_clean(&mut fresh, &totals);
        prop_assert!(
            recovered == reference,
            "post-recovery output differs from fresh pool \
             (threads {threads}, fault at worker {worker} phase {phase})"
        );
    }
}
