//! Properties of the 2-D recursive bisection (`partition_2d`).
//!
//! The proportional split used to floor-divide the split point, which for
//! non-power-of-two `parts` could land on a rectangle edge and emit a
//! zero-width half — the `retain` then silently *lost* that share, leaving
//! some thread with no work and another with a near-double rectangle. These
//! properties pin the repaired contract: exact cover, exactly
//! `min(parts, area)` non-empty rectangles, and a bounded max/min area
//! ratio.

use lowino_parallel::partition_2d;
use lowino_testkit::{prop_assert, property};

property! {
    /// Every cell of the `rows × cols` rectangle is covered by exactly one
    /// emitted sub-rectangle, and exactly `min(parts, area)` non-empty
    /// sub-rectangles come back — no share is ever silently dropped.
    #[cases(128)]
    fn partition_2d_exact_cover_and_count(
        rows in 0usize..24,
        cols in 0usize..24,
        parts in 1usize..17,
    ) {
        let ps = partition_2d(rows, cols, parts);
        let area = rows * cols;
        prop_assert!(
            ps.len() == parts.min(area),
            "rows={rows} cols={cols} parts={parts}: got {} rects, want {}",
            ps.len(),
            parts.min(area)
        );
        let mut cells = vec![0u8; area];
        for p in &ps {
            prop_assert!(
                !p.rows.is_empty() && !p.cols.is_empty(),
                "degenerate rectangle {p:?}"
            );
            prop_assert!(p.rows.end <= rows && p.cols.end <= cols, "{p:?} out of bounds");
            for r in p.rows.clone() {
                for c in p.cols.clone() {
                    cells[r * cols + c] += 1;
                }
            }
        }
        for (i, &n) in cells.iter().enumerate() {
            prop_assert!(
                n == 1,
                "cell {i} covered {n} times (rows={rows} cols={cols} parts={parts})"
            );
        }
    }

    /// Balance bound: the largest rectangle's area is within a small
    /// constant factor of the smallest's. (Perfect equality is impossible —
    /// cell boundaries are discrete — but the old degenerate splits gave
    /// unbounded ratios; the repaired recursion shares parts proportionally
    /// to achieved areas, which keeps the ratio ≤ 3 exhaustively over
    /// `rows, cols ≤ 64, parts ≤ 16` — this property samples inside that
    /// brute-forced envelope. Beyond 16 parts the worst discrete corner is
    /// ratio 4 at `6×7` into 20.)
    #[cases(128)]
    fn partition_2d_balance_bound(
        rows in 1usize..32,
        cols in 1usize..32,
        parts in 2usize..17,
    ) {
        let ps = partition_2d(rows, cols, parts);
        let areas: Vec<usize> = ps.iter().map(|p| p.rows.len() * p.cols.len()).collect();
        let max = *areas.iter().max().expect("non-empty");
        let min = *areas.iter().min().expect("non-empty");
        prop_assert!(
            max <= 3 * min,
            "rows={rows} cols={cols} parts={parts}: areas {areas:?} ratio {max}/{min}"
        );
    }
}

/// The motivating regression: `2×2` into 3 parts used to emit a zero-width
/// rectangle (floored split at the edge) and lose it to the `retain`,
/// returning only 2 rectangles.
#[test]
fn two_by_two_into_three_keeps_all_parts() {
    let ps = partition_2d(2, 2, 3);
    assert_eq!(ps.len(), 3, "{ps:?}");
    let total: usize = ps.iter().map(|p| p.rows.len() * p.cols.len()).sum();
    assert_eq!(total, 4);
}
