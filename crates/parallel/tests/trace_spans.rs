//! Pool ↔ trace integration: `run_phases` emits one well-nested
//! `pool/phase` span per phase per participating worker.
//!
//! Single `#[test]` on purpose — the recorder is process-global and this
//! binary must own it exclusively while recording.

use lowino_parallel::StaticPool;
use lowino_trace as trace;
use lowino_trace::EventKind;

#[test]
fn run_phases_emits_one_span_per_phase_per_worker() {
    const THREADS: usize = 4;
    const PHASES: usize = 3;
    let mut pool = StaticPool::new(THREADS);
    trace::set_enabled(true);
    trace::reset();
    pool.run_phases(&[64, 32, 16], |_, phase, range| {
        trace::counter("test/tasks", range.len() as u64);
        trace::instant("test/phase_tick", phase as u64);
    });
    let threads = trace::drain();
    trace::set_enabled(false);

    let mut participants = 0;
    let mut tasks = 0u64;
    for th in &threads {
        let phase_events: Vec<_> = th
            .events
            .iter()
            .filter(|e| e.name == "pool/phase")
            .collect();
        if phase_events.is_empty() {
            continue;
        }
        participants += 1;
        // Per thread: Begin(0) End Begin(1) End Begin(2) End — strictly
        // alternating (phase spans never nest in one worker) and in phase
        // order.
        assert_eq!(phase_events.len(), 2 * PHASES, "tid {}", th.tid);
        let mut open: Option<u64> = None;
        let mut next_phase = 0u64;
        for ev in phase_events {
            match ev.kind {
                EventKind::Begin => {
                    assert!(open.is_none(), "tid {}: nested pool/phase", th.tid);
                    assert_eq!(ev.arg, next_phase, "tid {}: phases in order", th.tid);
                    open = Some(ev.arg);
                    next_phase += 1;
                }
                EventKind::End => {
                    assert!(open.take().is_some(), "tid {}: End w/o Begin", th.tid);
                }
                _ => panic!("unexpected pool/phase event kind"),
            }
        }
        assert!(open.is_none(), "tid {}: span left open", th.tid);
        // Body events must land inside the phase spans: counters were
        // emitted between each Begin/End pair, so the thread saw some work.
        tasks += th
            .events
            .iter()
            .filter(|e| e.name == "test/tasks")
            .map(|e| e.arg)
            .sum::<u64>();
    }
    assert_eq!(
        participants, THREADS,
        "every pool worker (incl. the caller) emits phase spans"
    );
    assert_eq!(tasks, 64 + 32 + 16, "all tasks ran inside traced phases");
    trace::reset();
}
