//! Fork-join execution with a static schedule.
//!
//! [`run_static`] is the one-shot scoped variant (spawns, runs, joins).
//! [`StaticPool`] keeps `ω-1` parked worker threads alive across jobs so that
//! steady-state inference pays only a wake/park per layer stage, matching the
//! paper's "the job … is executed using a single fork-join method".

use core::ops::Range;

use std::sync::{Arc, Condvar, Mutex};

use crate::partition::partition;

/// Execute `f(worker, range)` over a static partition of `0..total` using
/// `threads` OS threads (including the caller). One-shot: threads are
/// spawned and joined inside the call, so `f` may borrow local data.
///
/// With `threads == 1` this degenerates to a plain call on the caller —
/// zero overhead, which is also the fast path on single-core hosts.
pub fn run_static<F>(threads: usize, total: usize, f: F)
where
    F: Fn(usize, Range<usize>) + Sync,
{
    assert!(threads > 0, "threads must be non-zero");
    let ranges = partition(total, threads);
    if ranges.is_empty() {
        return;
    }
    if ranges.len() == 1 {
        f(0, ranges[0].clone());
        return;
    }
    std::thread::scope(|scope| {
        for (idx, range) in ranges.iter().enumerate().skip(1) {
            let fref = &f;
            let range = range.clone();
            scope.spawn(move || fref(idx, range));
        }
        f(0, ranges[0].clone());
    });
}

/// Type-erased job pointer handed to workers.
///
/// SAFETY invariant: the pointee outlives every execution — guaranteed
/// because [`StaticPool::run`] does not return until all workers have
/// finished the job (join barrier), and the pointee lives in `run`'s frame.
struct JobPtr(*const (dyn Fn(usize) + Sync + 'static));
// SAFETY: see invariant above; the pointer is only dereferenced while the
// owning `run` frame is blocked waiting for completion.
unsafe impl Send for JobPtr {}

struct State {
    epoch: u64,
    job: Option<JobPtr>,
    remaining: usize,
    shutdown: bool,
}

struct Inner {
    state: Mutex<State>,
    work_cv: Condvar,
    done_cv: Condvar,
}

/// Lock ignoring poisoning: a panicking job must not wedge the pool
/// (`parking_lot`, which this replaced, had no poisoning either — the
/// `State` fields stay consistent because they are only mutated after the
/// job closure returns).
fn lock_state(inner: &Inner) -> std::sync::MutexGuard<'_, State> {
    match inner.state.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn wait_on<'a>(
    cv: &Condvar,
    guard: std::sync::MutexGuard<'a, State>,
) -> std::sync::MutexGuard<'a, State> {
    match cv.wait(guard) {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A persistent fork-join pool with `ω` execution slots (`ω-1` parked worker
/// threads plus the calling thread).
///
/// Each [`run`](StaticPool::run) pre-partitions the task space statically and
/// executes it as a single fork-join; worker `i` always receives partition
/// `i`, so memory-access patterns are stable across invocations (paper §4.4).
pub struct StaticPool {
    inner: Arc<Inner>,
    handles: Vec<std::thread::JoinHandle<()>>,
    threads: usize,
}

impl StaticPool {
    /// Create a pool with `threads` total execution slots (≥ 1).
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "threads must be non-zero");
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                epoch: 0,
                job: None,
                remaining: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let mut handles = Vec::with_capacity(threads.saturating_sub(1));
        for worker in 1..threads {
            let inner = Arc::clone(&inner);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("lowino-worker-{worker}"))
                    .spawn(move || Self::worker_loop(&inner, worker))
                    .expect("spawn worker"),
            );
        }
        Self {
            inner,
            handles,
            threads,
        }
    }

    /// Number of execution slots.
    pub fn threads(&self) -> usize {
        self.threads
    }

    fn worker_loop(inner: &Inner, worker: usize) {
        let mut last_epoch = 0u64;
        loop {
            let job = {
                let mut st = lock_state(inner);
                while !st.shutdown && st.epoch == last_epoch {
                    st = wait_on(&inner.work_cv, st);
                }
                if st.shutdown {
                    return;
                }
                last_epoch = st.epoch;
                st.job.as_ref().expect("job set with epoch").0
            };
            // SAFETY: the JobPtr invariant — `run` is blocked until we
            // decrement `remaining` below, so the pointee is alive.
            unsafe { (*job)(worker) };
            let mut st = lock_state(inner);
            st.remaining -= 1;
            if st.remaining == 0 {
                inner.done_cv.notify_one();
            }
        }
    }

    /// Execute `f(worker, range)` over a static partition of `0..total`.
    ///
    /// Blocks until every worker has finished its partition. `f` may borrow
    /// from the caller's stack (the join barrier upholds the `JobPtr`
    /// safety invariant).
    pub fn run<F>(&mut self, total: usize, f: F)
    where
        F: Fn(usize, Range<usize>) + Sync,
    {
        let ranges = partition(total, self.threads);
        if ranges.is_empty() {
            return;
        }
        if self.threads == 1 || ranges.len() == 1 {
            f(0, ranges[0].clone());
            return;
        }
        let ranges_ref = &ranges;
        let fref = &f;
        let job = move |worker: usize| {
            if let Some(r) = ranges_ref.get(worker) {
                fref(worker, r.clone());
            }
        };
        let job_dyn: &(dyn Fn(usize) + Sync) = &job;
        // SAFETY of the transmute: we only erase the lifetime; the pointer is
        // never used after `run` returns (join barrier below).
        let ptr: *const (dyn Fn(usize) + Sync + 'static) =
            unsafe { core::mem::transmute(job_dyn as *const (dyn Fn(usize) + Sync)) };
        {
            let mut st = lock_state(&self.inner);
            st.job = Some(JobPtr(ptr));
            st.epoch += 1;
            st.remaining = self.handles.len();
            self.inner.work_cv.notify_all();
        }
        // The caller is worker 0.
        job(0);
        let mut st = lock_state(&self.inner);
        while st.remaining > 0 {
            st = wait_on(&self.inner.done_cv, st);
        }
        st.job = None;
    }
}

impl Drop for StaticPool {
    fn drop(&mut self) {
        {
            let mut st = lock_state(&self.inner);
            st.shutdown = true;
            self.inner.work_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn run_static_single_thread_inline() {
        let mut seen = [false; 10];
        run_static(1, 10, |w, range| {
            assert_eq!(w, 0);
            assert_eq!(range, 0..10);
        });
        // Borrowing mutable data works through interior-free single thread.
        run_static(1, 10, |_, range| {
            for _i in range.clone() {}
        });
        seen[0] = true;
        assert!(seen[0]);
    }

    #[test]
    fn run_static_multi_thread_disjoint_writes() {
        let mut data = vec![0usize; 1000];
        let chunks: Vec<&mut [usize]> = data.chunks_mut(250).collect();
        let cells: Vec<std::sync::Mutex<&mut [usize]>> =
            chunks.into_iter().map(std::sync::Mutex::new).collect();
        run_static(4, 4, |_, range| {
            for i in range {
                let mut c = cells[i].lock().unwrap();
                for v in c.iter_mut() {
                    *v = i + 1;
                }
            }
        });
        for (i, chunk) in data.chunks(250).enumerate() {
            assert!(chunk.iter().all(|&v| v == i + 1));
        }
    }

    #[test]
    fn pool_runs_many_jobs() {
        let mut pool = StaticPool::new(4);
        assert_eq!(pool.threads(), 4);
        for round in 0..50usize {
            let counter = AtomicUsize::new(0);
            pool.run(97, |_, range| {
                counter.fetch_add(range.len(), Ordering::Relaxed);
            });
            assert_eq!(counter.load(Ordering::Relaxed), 97, "round={round}");
        }
    }

    #[test]
    fn pool_worker_ids_are_stable_and_distinct() {
        let mut pool = StaticPool::new(3);
        let ids = std::sync::Mutex::new(Vec::new());
        pool.run(3, |w, range| {
            assert_eq!(range.len(), 1);
            ids.lock().unwrap().push((w, range.start));
        });
        let mut ids = ids.into_inner().unwrap();
        ids.sort();
        // Worker i always receives partition i.
        assert_eq!(ids, vec![(0, 0), (1, 1), (2, 2)]);
    }

    #[test]
    fn pool_empty_job_is_noop() {
        let mut pool = StaticPool::new(2);
        pool.run(0, |_, _| panic!("must not be called"));
    }

    #[test]
    fn pool_more_threads_than_tasks() {
        let mut pool = StaticPool::new(8);
        let counter = AtomicUsize::new(0);
        pool.run(3, |_, range| {
            counter.fetch_add(range.len(), Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn pool_borrows_stack_data() {
        let mut pool = StaticPool::new(4);
        let data: Vec<usize> = (0..64).collect();
        let sum = AtomicUsize::new(0);
        pool.run(64, |_, range| {
            let local: usize = range.map(|i| data[i]).sum();
            sum.fetch_add(local, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 64 * 63 / 2);
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let mut pool = StaticPool::new(1);
        let counter = AtomicUsize::new(0);
        pool.run(10, |w, range| {
            assert_eq!(w, 0);
            counter.fetch_add(range.len(), Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 10);
    }
}
