//! Fork-join execution with a static schedule.
//!
//! [`run_static`] is the one-shot scoped variant (spawns, runs, joins).
//! [`StaticPool`] keeps `ω-1` parked worker threads alive across jobs so that
//! steady-state inference pays only a wake/park per layer, matching the
//! paper's "the job … is executed using a single fork-join method".
//!
//! The core entry point is [`StaticPool::run_phases`]: a *multi-phase* job
//! executes stages ①→②→③ of a layer inside **one** fork-join — workers stay
//! resident across stages and synchronise at an in-pool sense-reversing
//! [`Barrier`] between phases instead of parking on the condvar and being
//! re-woken per stage. [`StaticPool::run`] and [`run_static`] are thin
//! single-phase wrappers over the same machinery.

use core::any::Any;
use core::ops::Range;
use core::sync::atomic::{AtomicBool, Ordering};

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::barrier::Barrier;
use crate::partition::{partition, partition_into};
use crate::steal::{set_chunk_stolen, StealQueues};

/// Key for the `pool/phase` fault site: which `(worker, phase)` visit of the
/// phase loop an armed fault should hit (see
/// [`lowino_testkit::faults::POOL_PHASE`]).
pub fn phase_fault_key(worker: usize, phase: usize) -> u64 {
    ((worker as u64) << 32) | phase as u64
}

/// Probe the `pool/phase` injection site at the top of every phase body.
/// Disarmed cost: one relaxed atomic load. A triggered fault panics exactly
/// like a buggy phase body would — inside the capture machinery, so it
/// exercises the real panic path end-to-end.
#[inline]
fn phase_fault_probe(worker: usize, phase: usize) {
    if lowino_testkit::faults::POOL_PHASE.fire_keyed(phase_fault_key(worker, phase)) {
        panic!("injected fault: pool/phase (worker {worker}, phase {phase})");
    }
}

/// Maximum number of phases a single fork-join job may contain. Generous:
/// the deepest executor pipeline today (quantize → transform → GEMM →
/// output) has four.
pub const MAX_PHASES: usize = 8;

/// Wall-clock duration of each phase of a [`StaticPool::run_phases`] call,
/// recorded by the calling thread (worker 0) at the inter-phase barriers.
///
/// A phase's time spans from the end of the previous phase's barrier to the
/// end of its own, so it includes any barrier wait — i.e. it charges each
/// phase with the time the slowest worker spent in it, which is what a
/// fork-join schedule actually pays.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimes {
    len: usize,
    times: [Duration; MAX_PHASES],
}

impl PhaseTimes {
    fn new(len: usize) -> Self {
        Self {
            len,
            times: [Duration::ZERO; MAX_PHASES],
        }
    }

    /// Number of phases recorded.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no phases were recorded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The recorded per-phase durations.
    pub fn as_slice(&self) -> &[Duration] {
        &self.times[..self.len]
    }

    /// Sum over all phases.
    pub fn total(&self) -> Duration {
        self.as_slice().iter().sum()
    }
}

impl core::ops::Index<usize> for PhaseTimes {
    type Output = Duration;

    fn index(&self, phase: usize) -> &Duration {
        &self.times[..self.len][phase]
    }
}

/// A panic captured from a fork-join job body, demoted to a plain message
/// so callers can surface it as a typed error instead of unwinding.
///
/// Returned by [`StaticPool::run_phases_catching`]; the pool itself is left
/// fully usable (the same guarantee [`StaticPool::run_phases`] gives when it
/// rethrows).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPanic {
    /// The panic payload (`&str` / `String` payloads verbatim, anything
    /// else a placeholder).
    pub message: String,
}

impl JobPanic {
    fn from_payload(payload: Box<dyn Any + Send>) -> Self {
        let message = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "<non-string panic payload>".to_string()
        };
        Self { message }
    }
}

impl core::fmt::Display for JobPanic {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "worker panic: {}", self.message)
    }
}

impl std::error::Error for JobPanic {}

/// First-panic-wins capture slot shared by all participants of one job.
///
/// A panicking phase body must not wedge the pool: the panic is parked here,
/// every participant keeps hitting the inter-phase barriers (skipping
/// further phase bodies once `tripped`), and the *caller* rethrows after the
/// join — so the pool's bookkeeping completes normally and the next job runs
/// on a healthy pool. This mirrors the poison-tolerant lock policy below.
#[derive(Default)]
struct PanicSlot {
    tripped: AtomicBool,
    slot: Mutex<Option<Box<dyn Any + Send>>>,
}

impl PanicSlot {
    fn store(&self, payload: Box<dyn Any + Send>) {
        self.tripped.store(true, Ordering::Release);
        let mut guard = match self.slot.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.get_or_insert(payload);
    }

    fn tripped(&self) -> bool {
        self.tripped.load(Ordering::Acquire)
    }

    fn take(&self) -> Option<Box<dyn Any + Send>> {
        let mut guard = match self.slot.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.take()
    }
}

/// One participant's walk through every phase of a job.
///
/// `sync` is `None` on the inline (single-participant) path — no barrier, no
/// panic capture, panics propagate straight to the caller. With `Some`, the
/// body of each phase is wrapped in `catch_unwind` and every participant
/// waits at the barrier after every phase, whether or not it had a range (a
/// phase may have fewer tasks than workers).
///
/// `queues` enables bounded intra-phase work-stealing on the fan-out path:
/// instead of executing its static range in one call, each participant pops
/// guided chunks off its own deque and then steals from stragglers, so the
/// phase body is invoked once per *chunk*. The one-shot scoped variants pass
/// `None` and keep the pure static schedule. Exactly-once execution is the
/// [`StealQueues`] invariant; the stolen-ness of the running chunk is
/// published through [`crate::steal::chunk_was_stolen`] for leaf-level trace
/// attribution.
///
/// `after_phase(p)` runs after the phase-`p` barrier — all participants are
/// guaranteed done with phase `p` at that point, which is where the caller
/// hangs its timestamps.
fn phase_loop<F, A>(
    worker: usize,
    plan: &[Vec<Range<usize>>],
    sync: Option<(&Barrier, &PanicSlot)>,
    queues: Option<&[StealQueues]>,
    f: &F,
    mut after_phase: A,
) where
    F: Fn(usize, usize, Range<usize>) + Sync,
    A: FnMut(usize),
{
    match sync {
        None => {
            for (phase, ranges) in plan.iter().enumerate() {
                let _span = lowino_trace::span_arg("pool/phase", phase as u64);
                phase_fault_probe(worker, phase);
                if let Some(r) = ranges.get(worker) {
                    f(worker, phase, r.clone());
                }
                after_phase(phase);
            }
        }
        Some((barrier, panics)) => {
            let tracing = lowino_trace::enabled();
            let mut token = barrier.sense_token();
            for (phase, ranges) in plan.iter().enumerate() {
                // The span covers the phase body *and* the barrier wait, so
                // each worker's phase span ends when the slowest worker
                // finishes — the same accounting as `PhaseTimes`, but per
                // worker instead of caller-only.
                let span = lowino_trace::span_arg("pool/phase", phase as u64);
                if !panics.tripped() {
                    if let Err(payload) = catch_unwind(AssertUnwindSafe(|| match queues {
                        Some(queues) => {
                            // Probed even when this worker ends up with no
                            // chunks, mirroring the static path.
                            phase_fault_probe(worker, phase);
                            let q = &queues[phase];
                            while !panics.tripped() {
                                let Some(chunk) = q.pop(worker) else { break };
                                // Probed per chunk (one-shot, so at most one
                                // fires): an armed `pool/phase` fault can land
                                // mid-steal, while other workers are actively
                                // draining the same phase.
                                phase_fault_probe(worker, phase);
                                set_chunk_stolen(chunk.stolen);
                                f(worker, phase, chunk.range);
                            }
                        }
                        None => {
                            phase_fault_probe(worker, phase);
                            if let Some(r) = ranges.get(worker) {
                                f(worker, phase, r.clone());
                            }
                        }
                    })) {
                        panics.store(payload);
                    }
                    set_chunk_stolen(false);
                }
                // Time spent waiting for stragglers at the barrier is the
                // scheduler's residual imbalance; only measured when tracing.
                let idle_from = if tracing { Some(Instant::now()) } else { None };
                barrier.wait(&mut token);
                if let Some(t0) = idle_from {
                    lowino_trace::counter("pool/idle_ns", t0.elapsed().as_nanos() as u64);
                }
                drop(span);
                after_phase(phase);
            }
        }
    }
}

/// Execute `f(worker, phase, range)` for each phase — `0..totals[p]`
/// statically partitioned across `threads` OS threads (including the
/// caller), with a barrier between phases. One-shot: threads are spawned
/// and joined inside the call, so `f` may borrow local data.
///
/// With one effective participant this degenerates to a plain sequential
/// loop on the caller — zero overhead, which is also the fast path on
/// single-core hosts.
///
/// `threads == 0` is clamped to 1 (the caller always participates), so a
/// misconfigured thread count degrades to sequential execution instead of
/// aborting the process.
pub fn run_static_phases<F>(threads: usize, totals: &[usize], f: F)
where
    F: Fn(usize, usize, Range<usize>) + Sync,
{
    let threads = threads.max(1);
    assert!(
        totals.len() <= MAX_PHASES,
        "at most {MAX_PHASES} phases per job (got {})",
        totals.len()
    );
    let plan: Vec<Vec<Range<usize>>> = totals.iter().map(|&t| partition(t, threads)).collect();
    let fan_out = threads > 1 && plan.iter().any(|ranges| ranges.len() > 1);
    if !fan_out {
        phase_loop(0, &plan, None, None, &f, |_| {});
        return;
    }
    let barrier = Barrier::new(threads);
    let panics = PanicSlot::default();
    let sync = (&barrier, &panics);
    std::thread::scope(|scope| {
        for worker in 1..threads {
            let fref = &f;
            let plan_ref = &plan;
            scope.spawn(move || phase_loop(worker, plan_ref, Some(sync), None, fref, |_| {}));
        }
        phase_loop(0, &plan, Some(sync), None, &f, |_| {});
    });
    if let Some(payload) = panics.take() {
        resume_unwind(payload);
    }
}

/// Execute `f(worker, range)` over a static partition of `0..total` using
/// `threads` OS threads (including the caller). One-shot wrapper over
/// [`run_static_phases`] with a single phase.
pub fn run_static<F>(threads: usize, total: usize, f: F)
where
    F: Fn(usize, Range<usize>) + Sync,
{
    run_static_phases(threads, &[total], |worker, _phase, range| f(worker, range));
}

/// Type-erased job pointer handed to workers.
///
/// SAFETY invariant: the pointee outlives every execution — guaranteed
/// because [`StaticPool::run_phases`] does not return until all workers have
/// finished the job (join barrier), and the pointee lives in its frame.
struct JobPtr(*const (dyn Fn(usize) + Sync + 'static));
// SAFETY: see invariant above; the pointer is only dereferenced while the
// owning `run_phases` frame is blocked waiting for completion.
unsafe impl Send for JobPtr {}

struct State {
    epoch: u64,
    job: Option<JobPtr>,
    remaining: usize,
    shutdown: bool,
}

struct Inner {
    state: Mutex<State>,
    work_cv: Condvar,
    done_cv: Condvar,
}

/// Lock ignoring poisoning: a panicking job must not wedge the pool
/// (`parking_lot`, which this replaced, had no poisoning either — the
/// `State` fields stay consistent because they are only mutated after the
/// job closure returns).
fn lock_state(inner: &Inner) -> std::sync::MutexGuard<'_, State> {
    match inner.state.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn wait_on<'a>(
    cv: &Condvar,
    guard: std::sync::MutexGuard<'a, State>,
) -> std::sync::MutexGuard<'a, State> {
    match cv.wait(guard) {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A persistent fork-join pool with `ω` execution slots (`ω-1` parked worker
/// threads plus the calling thread).
///
/// Each job pre-partitions the task space statically and executes it as a
/// single fork-join; worker `i` always *starts* on partition `i`, so
/// memory-access patterns are stable across invocations (paper §4.4). Within
/// a phase, workers that drain their partition early re-balance the tail via
/// bounded [`StealQueues`] stealing — half the richest straggler's
/// remainder, never a victim's last task — so skewed phases no longer
/// serialise on the slowest static partition. A multi-phase job
/// ([`run_phases`](StaticPool::run_phases)) wakes and parks the workers
/// **once** for the whole layer; phases hand off at an in-pool [`Barrier`]
/// instead.
pub struct StaticPool {
    inner: Arc<Inner>,
    handles: Vec<std::thread::JoinHandle<()>>,
    threads: usize,
    /// Reusable per-phase partition buffers: zero steady-state allocation.
    plan: [Vec<Range<usize>>; MAX_PHASES],
    /// Reusable per-phase stealing deques, re-seeded from `plan` before each
    /// fan-out job: zero steady-state allocation.
    queues: [StealQueues; MAX_PHASES],
    /// Fork-joins issued so far (inline fast-path jobs included).
    jobs: u64,
}

impl StaticPool {
    /// Create a pool with `threads` total execution slots. `0` is clamped
    /// to 1 (the caller is always a participant), so a misconfigured thread
    /// count yields a sequential pool rather than an abort.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        // Pool construction is on every entry path into the executor stack,
        // so it doubles as the `LOWINO_TRACE` / `LOWINO_FAULT` activation
        // point.
        lowino_trace::init_from_env();
        lowino_testkit::faults::init_from_env();
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                epoch: 0,
                job: None,
                remaining: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let mut handles = Vec::with_capacity(threads.saturating_sub(1));
        for worker in 1..threads {
            let inner = Arc::clone(&inner);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("lowino-worker-{worker}"))
                    .spawn(move || Self::worker_loop(&inner, worker))
                    .expect("spawn worker"),
            );
        }
        Self {
            inner,
            handles,
            threads,
            plan: core::array::from_fn(|_| Vec::new()),
            queues: core::array::from_fn(|_| StealQueues::new(threads)),
            jobs: 0,
        }
    }

    /// Number of execution slots.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Total fork-joins issued by this pool (each [`run`](StaticPool::run) or
    /// [`run_phases`](StaticPool::run_phases) call counts once, however many
    /// phases it contains and whether or not it fanned out to workers).
    ///
    /// Tests use the delta across an `execute` call to assert a layer costs
    /// exactly one fork-join.
    pub fn fork_joins(&self) -> u64 {
        self.jobs
    }

    fn worker_loop(inner: &Inner, worker: usize) {
        let mut last_epoch = 0u64;
        loop {
            let job = {
                let mut st = lock_state(inner);
                while !st.shutdown && st.epoch == last_epoch {
                    st = wait_on(&inner.work_cv, st);
                }
                if st.shutdown {
                    return;
                }
                last_epoch = st.epoch;
                st.job.as_ref().expect("job set with epoch").0
            };
            // SAFETY: the JobPtr invariant — `run_phases` is blocked until we
            // decrement `remaining` below, so the pointee is alive.
            unsafe { (*job)(worker) };
            let mut st = lock_state(inner);
            st.remaining -= 1;
            if st.remaining == 0 {
                inner.done_cv.notify_one();
            }
        }
    }

    /// Execute a multi-phase job as a **single fork-join**.
    ///
    /// For each phase `p`, `f(worker, p, range)` is invoked over a static
    /// partition of `0..totals[p]`; all participants synchronise at a
    /// sense-reversing barrier between phases, so phase `p+1` never starts
    /// before every worker finished phase `p`, and writes made in phase `p`
    /// are visible to every reader in phase `p+1` (barrier acquire/release).
    ///
    /// Blocks until every worker has finished every phase. `f` may borrow
    /// from the caller's stack (the join barrier upholds the `JobPtr`
    /// safety invariant). If a phase body panics, the first panic is
    /// rethrown here after the join — the pool itself stays usable.
    ///
    /// Returns per-phase wall-clock times recorded by the caller at the
    /// barriers.
    pub fn run_phases<F>(&mut self, totals: &[usize], f: F) -> PhaseTimes
    where
        F: Fn(usize, usize, Range<usize>) + Sync,
    {
        match self.run_phases_inner(totals, &f, false) {
            (times, None) => times,
            (_, Some(payload)) => resume_unwind(payload),
        }
    }

    /// [`run_phases`](StaticPool::run_phases) that converts a captured
    /// phase-body panic into a typed [`JobPanic`] instead of rethrowing.
    ///
    /// This is the resilient-execution entry point: a worker panic surfaces
    /// as a recoverable `Err`, and the pool (workers parked, bookkeeping
    /// consistent) is immediately reusable for the next job — including on
    /// the inline single-participant fast path, where the caller's own
    /// panic is caught too.
    pub fn run_phases_catching<F>(
        &mut self,
        totals: &[usize],
        f: F,
    ) -> Result<PhaseTimes, JobPanic>
    where
        F: Fn(usize, usize, Range<usize>) + Sync,
    {
        match self.run_phases_inner(totals, &f, true) {
            (times, None) => Ok(times),
            (_, Some(payload)) => Err(JobPanic::from_payload(payload)),
        }
    }

    /// Shared machinery: returns the first captured panic payload instead
    /// of deciding whether to rethrow. `catch_inline` additionally wraps
    /// the no-fan-out fast path in `catch_unwind` (the fan-out path always
    /// captures, so the pool bookkeeping completes either way).
    fn run_phases_inner<F>(
        &mut self,
        totals: &[usize],
        f: &F,
        catch_inline: bool,
    ) -> (PhaseTimes, Option<Box<dyn Any + Send>>)
    where
        F: Fn(usize, usize, Range<usize>) + Sync,
    {
        let phases = totals.len();
        assert!(
            phases <= MAX_PHASES,
            "at most {MAX_PHASES} phases per job (got {phases})"
        );
        self.jobs += 1;
        for (p, &total) in totals.iter().enumerate() {
            partition_into(total, self.threads, &mut self.plan[p]);
        }
        let mut times = PhaseTimes::new(phases);
        let plan = &self.plan[..phases];
        let fan_out = self.threads > 1 && plan.iter().any(|ranges| ranges.len() > 1);
        if !fan_out {
            // Every phase fits one participant: run the whole job inline on
            // the caller without waking anyone.
            let mut mark = Instant::now();
            let mut run = |times: &mut PhaseTimes| {
                phase_loop(0, plan, None, None, f, |p| {
                    let now = Instant::now();
                    times.times[p] = now - mark;
                    mark = now;
                });
            };
            if catch_inline {
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| run(&mut times))) {
                    return (times, Some(payload));
                }
            } else {
                run(&mut times);
            }
            return (times, None);
        }
        // Seed the per-phase stealing deques from the static plan while every
        // worker is still parked (reset must not race with pops).
        let queues = &self.queues[..phases];
        for (q, ranges) in queues.iter().zip(plan) {
            q.reset(ranges);
        }
        let barrier = Barrier::new(self.threads);
        let panics = PanicSlot::default();
        let sync = (&barrier, &panics);
        let fref = &f;
        let job =
            move |worker: usize| phase_loop(worker, plan, Some(sync), Some(queues), fref, |_| {});
        let job_dyn: &(dyn Fn(usize) + Sync) = &job;
        // SAFETY of the transmute: we only erase the lifetime; the pointer is
        // never used after `run_phases` returns (join barrier below).
        let ptr: *const (dyn Fn(usize) + Sync + 'static) =
            unsafe { core::mem::transmute(job_dyn as *const (dyn Fn(usize) + Sync)) };
        {
            let mut st = lock_state(&self.inner);
            st.job = Some(JobPtr(ptr));
            st.epoch += 1;
            st.remaining = self.handles.len();
            self.inner.work_cv.notify_all();
        }
        // The caller is worker 0 and records the phase timestamps.
        let mut mark = Instant::now();
        phase_loop(0, plan, Some(sync), Some(queues), fref, |p| {
            let now = Instant::now();
            times.times[p] = now - mark;
            mark = now;
        });
        let mut st = lock_state(&self.inner);
        while st.remaining > 0 {
            st = wait_on(&self.inner.done_cv, st);
        }
        st.job = None;
        drop(st);
        if lowino_trace::enabled() {
            // Emitted once per fan-out job as an instant (counters drop
            // zero deltas) so traced runs always carry the marker, steals
            // or not.
            lowino_trace::instant("pool/steal", queues.iter().map(StealQueues::steals).sum());
        }
        let payload = panics.take();
        (times, payload)
    }

    /// Execute `f(worker, range)` over a static partition of `0..total`.
    ///
    /// Single-phase wrapper over [`run_phases`](StaticPool::run_phases).
    pub fn run<F>(&mut self, total: usize, f: F)
    where
        F: Fn(usize, Range<usize>) + Sync,
    {
        self.run_phases(&[total], |worker, _phase, range| f(worker, range));
    }
}

impl Drop for StaticPool {
    fn drop(&mut self) {
        {
            let mut st = lock_state(&self.inner);
            st.shutdown = true;
            self.inner.work_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn run_static_single_thread_inline() {
        let mut seen = [false; 10];
        run_static(1, 10, |w, range| {
            assert_eq!(w, 0);
            assert_eq!(range, 0..10);
        });
        // Borrowing mutable data works through interior-free single thread.
        run_static(1, 10, |_, range| {
            for _i in range.clone() {}
        });
        seen[0] = true;
        assert!(seen[0]);
    }

    #[test]
    fn run_static_multi_thread_disjoint_writes() {
        let mut data = vec![0usize; 1000];
        let chunks: Vec<&mut [usize]> = data.chunks_mut(250).collect();
        let cells: Vec<std::sync::Mutex<&mut [usize]>> =
            chunks.into_iter().map(std::sync::Mutex::new).collect();
        run_static(4, 4, |_, range| {
            for i in range {
                let mut c = cells[i].lock().unwrap();
                for v in c.iter_mut() {
                    *v = i + 1;
                }
            }
        });
        for (i, chunk) in data.chunks(250).enumerate() {
            assert!(chunk.iter().all(|&v| v == i + 1));
        }
    }

    #[test]
    fn run_static_phases_barrier_orders_phases() {
        // Phase 1 observes *every* write of phase 0, from every worker.
        let hits: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        run_static_phases(4, &[64, 64], |_, phase, range| {
            if phase == 0 {
                for i in range {
                    hits[i].store(i + 1, Ordering::Relaxed);
                }
            } else {
                let sum: usize = hits.iter().map(|h| h.load(Ordering::Relaxed)).sum();
                assert_eq!(sum, 64 * 65 / 2, "range {range:?} saw a torn phase 0");
            }
        });
    }

    #[test]
    fn pool_runs_many_jobs() {
        let mut pool = StaticPool::new(4);
        assert_eq!(pool.threads(), 4);
        for round in 0..50usize {
            let counter = AtomicUsize::new(0);
            pool.run(97, |_, range| {
                counter.fetch_add(range.len(), Ordering::Relaxed);
            });
            assert_eq!(counter.load(Ordering::Relaxed), 97, "round={round}");
        }
        assert_eq!(pool.fork_joins(), 50);
    }

    #[test]
    fn pool_worker_ids_are_stable_and_distinct() {
        let mut pool = StaticPool::new(3);
        let ids = std::sync::Mutex::new(Vec::new());
        pool.run(3, |w, range| {
            assert_eq!(range.len(), 1);
            ids.lock().unwrap().push((w, range.start));
        });
        let mut ids = ids.into_inner().unwrap();
        ids.sort();
        // Worker i always receives partition i.
        assert_eq!(ids, vec![(0, 0), (1, 1), (2, 2)]);
    }

    #[test]
    fn pool_empty_job_is_noop() {
        let mut pool = StaticPool::new(2);
        pool.run(0, |_, _| panic!("must not be called"));
    }

    #[test]
    fn pool_more_threads_than_tasks() {
        let mut pool = StaticPool::new(8);
        let counter = AtomicUsize::new(0);
        pool.run(3, |_, range| {
            counter.fetch_add(range.len(), Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn pool_borrows_stack_data() {
        let mut pool = StaticPool::new(4);
        let data: Vec<usize> = (0..64).collect();
        let sum = AtomicUsize::new(0);
        pool.run(64, |_, range| {
            let local: usize = range.map(|i| data[i]).sum();
            sum.fetch_add(local, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 64 * 63 / 2);
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let mut pool = StaticPool::new(1);
        let counter = AtomicUsize::new(0);
        pool.run(10, |w, range| {
            assert_eq!(w, 0);
            counter.fetch_add(range.len(), Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn run_phases_is_one_fork_join() {
        let mut pool = StaticPool::new(4);
        let before = pool.fork_joins();
        let counter = AtomicUsize::new(0);
        let times = pool.run_phases(&[32, 16, 8], |_, phase, range| {
            counter.fetch_add((phase + 1) * range.len(), Ordering::Relaxed);
        });
        assert_eq!(pool.fork_joins(), before + 1);
        assert_eq!(counter.load(Ordering::Relaxed), 32 + 2 * 16 + 3 * 8);
        assert_eq!(times.len(), 3);
        assert_eq!(times.as_slice().len(), 3);
        assert_eq!(times.total(), times[0] + times[1] + times[2]);
    }

    #[test]
    fn run_phases_barrier_orders_phases() {
        let mut pool = StaticPool::new(4);
        let hits: Vec<AtomicUsize> = (0..128).map(|_| AtomicUsize::new(0)).collect();
        pool.run_phases(&[128, 128], |_, phase, range| {
            if phase == 0 {
                for i in range {
                    hits[i].store(i + 1, Ordering::Relaxed);
                }
            } else {
                let sum: usize = hits.iter().map(|h| h.load(Ordering::Relaxed)).sum();
                assert_eq!(sum, 128 * 129 / 2, "range {range:?} saw a torn phase 0");
            }
        });
    }

    #[test]
    fn run_phases_empty_phase_between_full_ones() {
        let mut pool = StaticPool::new(4);
        let counter = AtomicUsize::new(0);
        let times = pool.run_phases(&[16, 0, 16], |_, phase, range| {
            assert_ne!(phase, 1, "empty phase must not run");
            counter.fetch_add(range.len(), Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 32);
        assert_eq!(times.len(), 3);
    }

    #[test]
    fn run_phases_no_phases_is_noop() {
        let mut pool = StaticPool::new(2);
        let times = pool.run_phases(&[], |_, _, _| panic!("must not be called"));
        assert!(times.is_empty());
        assert_eq!(times.total(), Duration::ZERO);
    }

    #[test]
    fn run_phases_matches_sequential_reference() {
        // Same accumulation executed phased-parallel and sequentially.
        for threads in [1usize, 2, 3, 5] {
            let mut pool = StaticPool::new(threads);
            let cells: Vec<AtomicUsize> = (0..40).map(|_| AtomicUsize::new(0)).collect();
            pool.run_phases(&[40, 20], |_, phase, range| {
                for i in range {
                    cells[i].fetch_add(i + 1 + phase * 100, Ordering::Relaxed);
                }
            });
            for (i, c) in cells.iter().enumerate() {
                let mut want = i + 1; // phase 0 covers all 40
                if i < 20 {
                    want += i + 1 + 100; // phase 1 covers the first 20
                }
                assert_eq!(c.load(Ordering::Relaxed), want, "threads={threads} i={i}");
            }
        }
    }

    #[test]
    fn pool_survives_panic_in_phase() {
        let mut pool = StaticPool::new(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run_phases(&[16, 16], |_, phase, range| {
                if phase == 0 && range.contains(&5) {
                    panic!("boom in phase 0");
                }
            });
        }));
        let payload = result.expect_err("panic must be rethrown to the caller");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("<non-str payload>");
        assert!(msg.contains("boom"), "unexpected payload: {msg}");
        // The pool must still be fully functional afterwards.
        let counter = AtomicUsize::new(0);
        pool.run(64, |_, range| {
            counter.fetch_add(range.len(), Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn run_static_phases_survives_panic() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_static_phases(4, &[16], |_, _, range| {
                if range.contains(&0) {
                    panic!("scoped boom");
                }
            });
        }));
        assert!(result.is_err());
    }

    #[test]
    fn run_phases_catching_surfaces_panic_as_error() {
        let mut pool = StaticPool::new(4);
        let err = pool
            .run_phases_catching(&[16, 16], |_, phase, range| {
                if phase == 1 && range.contains(&3) {
                    panic!("typed boom");
                }
            })
            .expect_err("panic must surface as JobPanic");
        assert!(err.message.contains("typed boom"), "got: {err}");
        // Pool reusable, and the clean run succeeds via the same API.
        let counter = AtomicUsize::new(0);
        let times = pool
            .run_phases_catching(&[32], |_, _, range| {
                counter.fetch_add(range.len(), Ordering::Relaxed);
            })
            .expect("clean job succeeds");
        assert_eq!(counter.load(Ordering::Relaxed), 32);
        assert_eq!(times.len(), 1);
    }

    #[test]
    fn run_phases_catching_covers_inline_fast_path() {
        // One thread ⇒ no fan-out: the caller's own panic must be caught too.
        let mut pool = StaticPool::new(1);
        let err = pool
            .run_phases_catching(&[4], |_, _, _| panic!("inline boom"))
            .expect_err("inline panic must surface as JobPanic");
        assert!(err.message.contains("inline boom"));
        let counter = AtomicUsize::new(0);
        pool.run(10, |_, range| {
            counter.fetch_add(range.len(), Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn injected_pool_phase_fault_is_caught() {
        use lowino_testkit::faults::POOL_PHASE;
        let mut pool = StaticPool::new(3);
        // Key on phase 3: no other test in this binary runs a 4-phase job,
        // so concurrently-running tests cannot consume the armed fault.
        POOL_PHASE.arm_keyed(phase_fault_key(2, 3));
        let totals = [24, 24, 24, 24];
        let err = pool
            .run_phases_catching(&totals, |_, _, _| {})
            .expect_err("armed fault must trigger");
        assert!(
            err.message.contains("injected fault: pool/phase"),
            "got: {err}"
        );
        assert!(!POOL_PHASE.is_armed(), "fault is one-shot");
        // One-shot: the retry completes clean on the same pool.
        let counter = AtomicUsize::new(0);
        pool.run_phases_catching(&totals, |_, _, range| {
            counter.fetch_add(range.len(), Ordering::Relaxed);
        })
        .expect("disarmed retry succeeds");
        assert_eq!(counter.load(Ordering::Relaxed), 4 * 24);
    }

    #[test]
    fn zero_threads_clamps_to_sequential() {
        let mut pool = StaticPool::new(0);
        assert_eq!(pool.threads(), 1);
        let counter = AtomicUsize::new(0);
        pool.run(7, |w, range| {
            assert_eq!(w, 0);
            counter.fetch_add(range.len(), Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 7);
        run_static_phases(0, &[5], |_, _, range| {
            counter.fetch_add(range.len(), Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 12);
    }

    #[test]
    fn run_counts_as_one_fork_join_each() {
        let mut pool = StaticPool::new(2);
        pool.run(8, |_, _| {});
        pool.run(8, |_, _| {});
        pool.run_phases(&[8, 8, 8], |_, _, _| {});
        assert_eq!(pool.fork_joins(), 3);
    }
}
