//! # lowino-parallel
//!
//! Static-scheduling multi-core substrate (paper §4.4).
//!
//! LoWino parallelises each pipeline stage with a *static* schedule: the task
//! space is pre-partitioned into `ω` equal contiguous ranges at plan time —
//! one per thread — and the whole job executes as a single fork-join, so
//! memory-access patterns are stable across invocations. On top of that seed
//! schedule, [`StealQueues`] adds *bounded* intra-phase work-stealing: a
//! worker that drains its own partition early steals half of the richest
//! victim's remainder instead of idling at the inter-phase barrier. Unlike a
//! rayon-style deque-per-spawn scheduler there is no task heap and no
//! allocation in the hot path — one packed atomic cursor per worker.
//!
//! Four layers are provided:
//!
//! * [`partition()`] / [`partition_2d()`] — the pure scheduling maths (tested
//!   exhaustively);
//! * [`Barrier`] — a sense-reversing spin barrier used to hand off between
//!   the phases of a multi-stage job without parking the workers;
//! * [`StealQueues`] — per-worker chunked deques (one packed `(next, end)`
//!   atomic cursor each) that re-balance a phase's tail without disturbing
//!   the static seed assignment;
//! * [`StaticPool`] — a persistent fork-join worker pool built from parked
//!   OS threads whose [`StaticPool::run_phases`] executes an entire layer
//!   (transform → GEMM → transform) as **one** fork-join with stealing
//!   inside each phase, plus [`run_static`] / [`run_static_phases`], scoped
//!   one-shot variants for borrowed data (static schedule only).

pub mod barrier;
pub mod partition;
pub mod pool;
pub mod steal;

pub use barrier::{Barrier, SenseToken};
pub use partition::{partition, partition_2d, partition_into, Partition2d};
pub use pool::{
    phase_fault_key, run_static, run_static_phases, JobPanic, PhaseTimes, StaticPool, MAX_PHASES,
};
pub use steal::{chunk_was_stolen, Chunk, StealQueues};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn run_static_covers_all_tasks_once() {
        let counter = AtomicUsize::new(0);
        let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        run_static(4, 100, |_, range| {
            for i in range {
                hits[i].fetch_add(1, Ordering::Relaxed);
                counter.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }
}
