//! Static task partitioning (the scheduling maths of paper §4.4).

use core::ops::Range;

/// Split `0..total` into at most `parts` contiguous ranges whose lengths
/// differ by at most one (each thread gets `⌈total/ω⌉` or `⌊total/ω⌋` tasks).
///
/// Returns fewer than `parts` ranges when `total < parts` (empty ranges are
/// never emitted), matching the paper's "each thread operates up to
/// `⌈N/ω⌉` tasks".
pub fn partition(total: usize, parts: usize) -> Vec<Range<usize>> {
    let mut out = Vec::new();
    partition_into(total, parts, &mut out);
    out
}

/// [`partition`] into a caller-owned buffer, reusing its capacity.
///
/// This is the allocation-free variant used by the pool's phased job path:
/// the per-phase plan buffers live on [`StaticPool`](crate::StaticPool) and
/// reach a steady state after the first job on a given shape.
pub fn partition_into(total: usize, parts: usize, out: &mut Vec<Range<usize>>) {
    assert!(parts > 0, "parts must be non-zero");
    out.clear();
    let parts = parts.min(total.max(1));
    if total == 0 {
        return;
    }
    let base = total / parts;
    let extra = total % parts; // first `extra` parts get one more task
    out.reserve(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        if len == 0 {
            break;
        }
        out.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, total);
}

/// A rectangular sub-domain produced by [`partition_2d`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition2d {
    /// Range over the outer (slow-varying) dimension.
    pub rows: Range<usize>,
    /// Range over the inner (fast-varying) dimension.
    pub cols: Range<usize>,
}

/// Recursively bisect a `rows × cols` task rectangle into `min(parts, area)`
/// contiguous sub-rectangles (paper §4.4: *"we recursively divide the task
/// dimensions so that the tiles to be operated are contiguous for each
/// thread"*).
///
/// The longer dimension is split first, keeping sub-domains close to square
/// so each thread's tiles stay spatially contiguous (cache reuse). The split
/// point is the *nearest* cell boundary to the proportional share, clamped
/// so both halves stay non-empty — a floor division here used to produce
/// degenerate zero-width halves for non-power-of-two `parts` (e.g. `2×2`
/// into 3 silently lost a part), starving the threads assigned to them.
/// Every emitted rectangle now holds at least one task, and the areas stay
/// within a small constant factor of each other (see the balance-bound
/// property test in `crates/parallel/tests/partition_prop.rs`).
pub fn partition_2d(rows: usize, cols: usize, parts: usize) -> Vec<Partition2d> {
    assert!(parts > 0, "parts must be non-zero");
    let mut out = Vec::with_capacity(parts);
    // More parts than tasks can never be honoured; trimming up front keeps
    // the recursion's proportional shares meaningful.
    let parts = parts.min((rows * cols).max(1));
    split_rect(0..rows, 0..cols, parts, &mut out);
    debug_assert!(out.iter().all(|p| !p.rows.is_empty() && !p.cols.is_empty()) || rows * cols == 0);
    out.retain(|p| !p.rows.is_empty() && !p.cols.is_empty());
    out
}

fn split_rect(rows: Range<usize>, cols: Range<usize>, parts: usize, out: &mut Vec<Partition2d>) {
    let area = rows.len() * cols.len();
    if parts <= 1 || area <= 1 {
        out.push(Partition2d { rows, cols });
        return;
    }
    let parts = parts.min(area);
    // Bisect the longer dimension at the cell boundary nearest the
    // `⌊parts/2⌋ : ⌈parts/2⌉` proportional point; the clamp keeps both
    // halves non-empty (the longer dimension has length ≥ 2 here, since
    // area ≥ 2 and this is its larger factor).
    let split = |len: usize| ((len * (parts / 2) + parts / 2) / parts).clamp(1, len - 1);
    let (left, right) = if rows.len() >= cols.len() {
        let mid = rows.start + split(rows.len());
        (
            (rows.start..mid, cols.clone()),
            (mid..rows.end, cols.clone()),
        )
    } else {
        let mid = cols.start + split(cols.len());
        (
            (rows.clone(), cols.start..mid),
            (rows.clone(), mid..cols.end),
        )
    };
    // Share `parts` proportionally to the *achieved* areas (cell boundaries
    // rarely land exactly on parts/2), clamped so each half can honour its
    // share with non-empty rectangles: at least 1, at most its area, and
    // never so greedy the other half is left short. `parts ≤ area`
    // guarantees the clamp interval is non-empty, which is what makes the
    // emitted count exactly `min(parts, area)` — the old floor-division
    // split could strand a share on a zero-width half and silently lose it.
    let (left_area, right_area) = (
        left.0.len() * left.1.len(),
        right.0.len() * right.1.len(),
    );
    let ideal = (parts * left_area + area / 2) / area;
    let left_parts = ideal.clamp(parts.saturating_sub(right_area).max(1), (parts - 1).min(left_area));
    let right_parts = parts - left_parts;
    split_rect(left.0, left.1, left_parts, out);
    split_rect(right.0, right.1, right_parts, out);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_exact_division() {
        let p = partition(16, 4);
        assert_eq!(p, vec![0..4, 4..8, 8..12, 12..16]);
    }

    #[test]
    fn partition_with_remainder_is_balanced() {
        let p = partition(10, 4);
        assert_eq!(p.len(), 4);
        let lens: Vec<_> = p.iter().map(|r| r.len()).collect();
        assert_eq!(lens.iter().sum::<usize>(), 10);
        assert!(lens.iter().all(|&l| l == 2 || l == 3));
        // Contiguous and ordered.
        for w in p.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn partition_more_parts_than_tasks() {
        let p = partition(3, 8);
        assert_eq!(p, vec![0..1, 1..2, 2..3]);
    }

    #[test]
    fn partition_zero_tasks() {
        assert!(partition(0, 4).is_empty());
    }

    #[test]
    fn partition_single_part() {
        assert_eq!(partition(7, 1), vec![0..7]);
    }

    #[test]
    fn partition_covers_everything_property() {
        for total in [0usize, 1, 2, 7, 64, 100, 1023] {
            for parts in [1usize, 2, 3, 4, 7, 8, 16] {
                let p = partition(total, parts);
                let covered: usize = p.iter().map(|r| r.len()).sum();
                assert_eq!(covered, total, "total={total} parts={parts}");
                let mut prev = 0;
                for r in &p {
                    assert_eq!(r.start, prev);
                    assert!(!r.is_empty());
                    prev = r.end;
                }
                // Balance: max - min <= 1.
                if !p.is_empty() {
                    let max = p.iter().map(|r| r.len()).max().unwrap();
                    let min = p.iter().map(|r| r.len()).min().unwrap();
                    assert!(max - min <= 1, "total={total} parts={parts}");
                }
            }
        }
    }

    #[test]
    fn partition_into_reuses_buffer_and_matches() {
        let mut buf = Vec::new();
        for (total, parts) in [(16usize, 4usize), (10, 4), (3, 8), (0, 4), (7, 1)] {
            partition_into(total, parts, &mut buf);
            assert_eq!(buf, partition(total, parts), "total={total} parts={parts}");
        }
        // Once grown, refills must not reallocate.
        partition_into(1024, 8, &mut buf);
        let cap = buf.capacity();
        let ptr = buf.as_ptr();
        partition_into(512, 8, &mut buf);
        assert_eq!(buf.capacity(), cap);
        assert_eq!(buf.as_ptr(), ptr);
    }

    #[test]
    fn partition_2d_covers_rectangle() {
        for (rows, cols, parts) in [(8, 8, 4), (7, 3, 4), (1, 16, 8), (16, 1, 8), (5, 5, 3)] {
            let ps = partition_2d(rows, cols, parts);
            let mut cells = vec![0u8; rows * cols];
            for p in &ps {
                for r in p.rows.clone() {
                    for c in p.cols.clone() {
                        cells[r * cols + c] += 1;
                    }
                }
            }
            assert!(
                cells.iter().all(|&c| c == 1),
                "rows={rows} cols={cols} parts={parts}: {cells:?}"
            );
        }
    }

    #[test]
    fn partition_2d_balance() {
        // Power-of-two everything: perfectly equal areas (paper: C, K, ω are
        // typically powers of two so "tasks can be equally assigned").
        let ps = partition_2d(16, 16, 4);
        assert_eq!(ps.len(), 4);
        for p in &ps {
            assert_eq!(p.rows.len() * p.cols.len(), 64);
        }
    }
}
