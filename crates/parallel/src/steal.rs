//! Bounded intra-phase work-stealing (the dynamic half of paper §4.4).
//!
//! The static schedule of [`partition`](crate::partition::partition) is kept
//! as the *seed*: worker `i` still starts on partition `i`, so first-touch
//! memory locality and the bitwise-identity guarantees of the executors are
//! unchanged. What changes is what happens when partitions finish at
//! different times — instead of idling at the inter-phase barrier, a worker
//! whose deque is empty steals **half** of the richest victim's remaining
//! range (from the back, preserving the victim's forward walk).
//!
//! The design is deliberately bounded, in the same discipline as
//! `lowino_testkit::faults`:
//!
//! * one packed `(next, end)` cursor per worker — a single cache-padded
//!   `AtomicU64`, claimed by CAS from either end;
//! * owners pop *guided* chunks (half the remaining range, so a worker
//!   issues `O(log n)` chunk calls, not `O(n)`);
//! * thieves never steal a victim's **last** task (steal threshold ≥ 2
//!   remaining), so jobs with one task per worker execute exactly on their
//!   statically assigned worker — deterministic scheduling for the
//!   single-task-per-worker jobs the tests pin;
//! * zero steady-state allocations: the cursors are allocated once at pool
//!   construction and re-seeded per phase;
//! * an idle owner's disarmed path (nothing left anywhere) is one relaxed
//!   scan over `ω` words and no waiting — it falls through to the barrier.
//!
//! Exactly-once execution holds because every pop/steal is a CAS on the one
//! cursor word: a task index leaves exactly one queue exactly once, whoever
//! claims it. `crates/parallel/tests/steal_prop.rs` property-tests this
//! under randomized interleavings.

use core::cell::Cell;
use core::ops::Range;
use core::sync::atomic::{AtomicU64, Ordering};

/// One worker's deque cursor: `(next << 32) | end` over task indices.
/// Padded to two cache lines so owner pops and steals on different workers
/// never false-share.
#[repr(align(128))]
#[derive(Default)]
struct Cursor(AtomicU64);

#[inline]
fn pack(next: u32, end: u32) -> u64 {
    ((next as u64) << 32) | end as u64
}

#[inline]
fn unpack(word: u64) -> (u32, u32) {
    ((word >> 32) as u32, word as u32)
}

thread_local! {
    /// Whether the chunk currently being executed by this thread was stolen
    /// from another worker's deque (set by the pool's phase loop before each
    /// chunk call). Lets leaf code — e.g. the GEMM driver's `gemm/steal`
    /// counter — attribute work to the scheduler without API churn.
    static CHUNK_STOLEN: Cell<bool> = const { Cell::new(false) };
}

/// True while the executing thread is running a chunk it stole from another
/// worker's deque; false on statically owned chunks and outside pool jobs.
pub fn chunk_was_stolen() -> bool {
    CHUNK_STOLEN.with(|c| c.get())
}

pub(crate) fn set_chunk_stolen(stolen: bool) {
    CHUNK_STOLEN.with(|c| c.set(stolen));
}

/// A chunk of the phase's task space claimed by [`StealQueues::pop`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chunk {
    /// Task indices to execute.
    pub range: Range<usize>,
    /// True when the chunk came from another worker's deque.
    pub stolen: bool,
}

/// Per-worker chunked deques over one phase's task space.
///
/// Seeded from the static partition by [`reset`](StealQueues::reset); drained
/// by concurrent [`pop`](StealQueues::pop) calls until every task has been
/// claimed exactly once.
pub struct StealQueues {
    cursors: Box<[Cursor]>,
    /// Chunks claimed from a non-owner deque since the last `reset`.
    steals: AtomicU64,
}

impl StealQueues {
    /// Queues for `workers` participants (clamped to ≥ 1, like the pool).
    pub fn new(workers: usize) -> Self {
        Self {
            cursors: (0..workers.max(1)).map(|_| Cursor::default()).collect(),
            steals: AtomicU64::new(0),
        }
    }

    /// Number of per-worker deques.
    pub fn workers(&self) -> usize {
        self.cursors.len()
    }

    /// Seed worker `i`'s deque from `plan[i]` (missing entries are empty)
    /// and zero the steal counter.
    ///
    /// Must not race with `pop` — the pool calls it before publishing a job,
    /// while every worker is parked.
    pub fn reset(&self, plan: &[Range<usize>]) {
        for (w, cursor) in self.cursors.iter().enumerate() {
            let r = plan.get(w).cloned().unwrap_or(0..0);
            assert!(r.end <= u32::MAX as usize, "task space exceeds u32 range");
            cursor
                .0
                .store(pack(r.start as u32, r.end as u32), Ordering::Relaxed);
        }
        self.steals.store(0, Ordering::Relaxed);
    }

    /// Claim the next chunk for `worker`: a guided chunk off the front of
    /// its own deque, else half the back of the richest victim's deque.
    /// `None` once every task in the phase has been claimed.
    pub fn pop(&self, worker: usize) -> Option<Chunk> {
        debug_assert!(worker < self.cursors.len());
        // Own deque first: guided self-scheduling, half the remainder per
        // pop (ceil, so a 1-task remainder is still claimed).
        let own = &self.cursors[worker].0;
        let mut word = own.load(Ordering::Acquire);
        loop {
            let (next, end) = unpack(word);
            let remaining = end.saturating_sub(next);
            if remaining == 0 {
                break;
            }
            let take = remaining.div_ceil(2);
            match own.compare_exchange_weak(
                word,
                pack(next + take, end),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    return Some(Chunk {
                        range: next as usize..(next + take) as usize,
                        stolen: false,
                    })
                }
                Err(actual) => word = actual,
            }
        }
        self.steal(worker)
    }

    /// Steal half of the richest victim's remaining range, from the back.
    /// Bounded: victims with fewer than 2 remaining tasks are never robbed,
    /// so their final task always runs on its statically assigned worker.
    fn steal(&self, thief: usize) -> Option<Chunk> {
        loop {
            let mut victim = None;
            let mut best = 1u32; // threshold: only steal when remaining ≥ 2
            for (w, cursor) in self.cursors.iter().enumerate() {
                if w == thief {
                    continue;
                }
                let (next, end) = unpack(cursor.0.load(Ordering::Relaxed));
                let remaining = end.saturating_sub(next);
                if remaining > best {
                    best = remaining;
                    victim = Some(w);
                }
            }
            let v = victim?;
            let cursor = &self.cursors[v].0;
            let word = cursor.load(Ordering::Acquire);
            let (next, end) = unpack(word);
            let remaining = end.saturating_sub(next);
            if remaining < 2 {
                continue; // victim drained between scan and claim: rescan
            }
            let take = remaining / 2;
            if cursor
                .compare_exchange(
                    word,
                    pack(next, end - take),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
            {
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some(Chunk {
                    range: (end - take) as usize..end as usize,
                    stolen: true,
                });
            }
            // CAS lost ⇒ someone made progress; rescan (total work shrank,
            // so this loop terminates).
        }
    }

    /// Chunks claimed from a non-owner deque since the last
    /// [`reset`](StealQueues::reset).
    pub fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_all(q: &StealQueues, worker: usize) -> Vec<Chunk> {
        let mut out = Vec::new();
        while let Some(c) = q.pop(worker) {
            out.push(c);
        }
        out
    }

    #[test]
    fn owner_drains_own_range_in_order() {
        let q = StealQueues::new(2);
        q.reset(&[0..10, 10..20]);
        let chunks = drain_all(&q, 0);
        // Guided halving: 5, 3(ceil of 5/2... of remainder), … front-ordered
        // and covering 0..10 before stealing the tail of worker 1.
        let own: Vec<_> = chunks.iter().filter(|c| !c.stolen).collect();
        assert_eq!(own.first().unwrap().range, 0..5);
        let mut covered: Vec<usize> = Vec::new();
        for c in &chunks {
            covered.extend(c.range.clone());
        }
        // Worker 1's final task can't be stolen (threshold ≥ 2 remaining).
        assert_eq!(covered.len(), 19);
        let rest = drain_all(&q, 1);
        assert_eq!(rest.len(), 1, "victim keeps exactly one task");
        covered.extend(rest[0].range.clone());
        covered.sort_unstable();
        assert_eq!(covered, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn single_task_per_worker_is_never_stolen() {
        let q = StealQueues::new(4);
        q.reset(&[0..1, 1..2, 2..3, 3..4]);
        assert!(q.pop(0).is_some_and(|c| c.range == (0..1) && !c.stolen));
        // With only single-task victims left, thief finds nothing.
        assert!(q.pop(0).is_none());
        assert_eq!(q.steals(), 0);
    }

    #[test]
    fn empty_seed_worker_steals_half() {
        let q = StealQueues::new(2);
        // Worker 0 owns the whole phase; worker 1's deque is seeded empty.
        q.reset(std::slice::from_ref(&(0..8)));
        let c = q.pop(1).expect("steals from worker 0");
        assert!(c.stolen);
        assert_eq!(c.range, 4..8, "half from the back");
        assert_eq!(q.steals(), 1);
    }

    #[test]
    fn exactly_once_sequential_drain() {
        let q = StealQueues::new(3);
        q.reset(&[0..7, 7..9, 9..40]);
        let mut seen = vec![0u32; 40];
        for w in [1, 0, 2, 0, 1] {
            if let Some(c) = q.pop(w) {
                for i in c.range {
                    seen[i] += 1;
                }
            }
        }
        for w in 0..3 {
            while let Some(c) = q.pop(w) {
                for i in c.range {
                    seen[i] += 1;
                }
            }
        }
        assert!(seen.iter().all(|&n| n == 1), "{seen:?}");
    }

    #[test]
    fn reset_reuses_without_allocation() {
        let q = StealQueues::new(4);
        q.reset(&[0..100, 100..200]);
        let _ = drain_all(&q, 2);
        q.reset(&[0..10, 10..20, 20..30, 30..41]);
        let total: usize = (0..4).flat_map(|w| drain_all(&q, w)).map(|c| c.range.len()).sum();
        assert_eq!(total, 41);
    }
}
