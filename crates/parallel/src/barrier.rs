//! A sense-reversing spin barrier for in-pool phase synchronisation.
//!
//! [`StaticPool::run_phases`](crate::StaticPool::run_phases) executes a
//! multi-stage layer as a *single* fork-join: workers stay resident across
//! stages and synchronise at this barrier between phases instead of parking
//! on the pool's condvar and being re-woken (paper §4.4 — "the job … is
//! executed using a single fork-join method"). A barrier crossing is two
//! atomic operations and a short spin, versus a mutex + condvar round-trip
//! (a futex syscall pair) for a full park/wake cycle.
//!
//! The design is the classic *sense-reversing centralised barrier*: a shared
//! arrival counter plus a shared `sense` flag. Each participant keeps a
//! local sense, initially the opposite of the shared flag; the last arriver
//! of a round resets the counter and flips the shared flag to the round's
//! sense, releasing the spinners. Flipping the local sense each round makes
//! the barrier immediately reusable — no intermediate "everyone left"
//! handshake is needed.

use core::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Spin iterations (with [`core::hint::spin_loop`]) before falling back to
/// [`std::thread::yield_now`]. Kept short: the pool may be oversubscribed
/// (more workers than cores), and a yielding waiter frees the core for the
/// straggler the barrier is waiting on.
const SPIN_LIMIT: u32 = 64;

/// A reusable barrier for a fixed set of participants.
pub struct Barrier {
    /// Arrivals in the current round.
    count: AtomicUsize,
    /// The sense of the last *completed* round.
    sense: AtomicBool,
    participants: usize,
}

impl Barrier {
    /// Barrier for `participants` threads (≥ 1).
    pub fn new(participants: usize) -> Self {
        assert!(participants > 0, "barrier needs at least one participant");
        Self {
            count: AtomicUsize::new(0),
            sense: AtomicBool::new(false),
            participants,
        }
    }

    /// Number of participating threads.
    pub fn participants(&self) -> usize {
        self.participants
    }

    /// Create this participant's sense token. Every participant must create
    /// exactly one and pass it to each [`wait`](Barrier::wait) in order.
    pub fn sense_token(&self) -> SenseToken {
        SenseToken { local_sense: true }
    }

    /// Block until all participants have called `wait` for the current
    /// round.
    ///
    /// The last arriver resets the arrival counter *before* publishing the
    /// flipped sense (release store), so a spinner that observes its sense
    /// also observes the reset counter and can immediately enter the next
    /// round.
    pub fn wait(&self, token: &mut SenseToken) {
        let sense = token.local_sense;
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.participants {
            self.count.store(0, Ordering::Relaxed);
            self.sense.store(sense, Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.sense.load(Ordering::Acquire) != sense {
                if spins < SPIN_LIMIT {
                    core::hint::spin_loop();
                    spins += 1;
                } else {
                    std::thread::yield_now();
                }
            }
        }
        token.local_sense = !sense;
    }
}

/// Per-participant barrier state (the participant's current sense).
#[derive(Debug)]
pub struct SenseToken {
    local_sense: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn single_participant_never_blocks() {
        let b = Barrier::new(1);
        let mut t = b.sense_token();
        for _ in 0..10 {
            b.wait(&mut t);
        }
        assert_eq!(b.participants(), 1);
    }

    #[test]
    fn rounds_are_totally_ordered() {
        // Each thread adds 1 << (8 * round) per round; after the barrier of
        // round R every counter digit 0..=R must be complete — a torn round
        // would leave a digit below the thread count.
        const THREADS: usize = 4;
        const ROUNDS: usize = 6;
        let b = Barrier::new(THREADS);
        let total = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    let mut tok = b.sense_token();
                    for round in 0..ROUNDS {
                        total.fetch_add(1 << (8 * round), Ordering::SeqCst);
                        b.wait(&mut tok);
                        let snap = total.load(Ordering::SeqCst);
                        for done in 0..=round {
                            let digit = (snap >> (8 * done)) & 0xFF;
                            assert_eq!(digit, THREADS as u64, "round {round} digit {done}");
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn reusable_across_many_rounds() {
        let b = Barrier::new(2);
        let hits = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    let mut tok = b.sense_token();
                    for _ in 0..1000 {
                        hits.fetch_add(1, Ordering::Relaxed);
                        b.wait(&mut tok);
                    }
                });
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 2000);
    }

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn zero_participants_rejected() {
        let _ = Barrier::new(0);
    }
}
