//! # lowino-tensor
//!
//! Tensor and data-layout substrate for the LoWino low-precision Winograd
//! convolution library.
//!
//! This crate provides the building blocks that every other LoWino crate sits
//! on top of:
//!
//! * [`AlignedBuf`] — 64-byte-aligned, heap-allocated buffers. All LoWino data
//!   is 64-byte aligned so the kernels can use aligned 512-bit vector
//!   loads/stores (paper §4.1: *"all data is 64-byte aligned and thus the
//!   aligned vectorized load/store instruction can be used"*).
//! * [`ConvShape`] — a validated description of a convolutional layer
//!   (batch, channels, spatial dims, filter size, stride, padding) together
//!   with the tile geometry of an `F(m×m, r×r)` Winograd algorithm.
//! * [`Tensor4`] — a plain NCHW `f32` tensor used at API boundaries and by the
//!   reference implementations.
//! * [`BlockedImage`] — the customised activation layout of Table 1 in the
//!   paper: `B × [C/φσ] × H × W × (φσ)` with `φσ = 64` channels innermost,
//!   which makes every per-pixel channel group one cache line of `f32 × 16`
//!   *per quarter* and lets the Winograd transforms operate on 64-wide lanes.
//!
//! The GEMM operand panels (`V`/`U`/`Z` of the paper's Figure 3) live in
//! `lowino-gemm`; they build on [`AlignedBuf`].

pub mod align;
pub mod blocked;
pub mod shape;
pub mod tensor4;

pub use align::AlignedBuf;
pub use blocked::BlockedImage;
pub use shape::{ConvShape, ShapeError, TileGeometry};
pub use tensor4::Tensor4;

/// Number of 8-bit elements in a 32-bit word (`φ` in the paper, §4.1).
pub const PHI: usize = 4;

/// Vector length in 32-bit lanes of a 512-bit register (`σ` in the paper).
pub const SIGMA: usize = 16;

/// The channel-block width used by every blocked layout: `φ·σ = 64`.
pub const LANES: usize = PHI * SIGMA;

/// Cache-line size (bytes) assumed throughout; all buffers are aligned to it.
pub const CACHE_LINE: usize = 64;

/// Round `x` up to the next multiple of `to` (`to > 0`).
#[inline]
pub const fn round_up(x: usize, to: usize) -> usize {
    debug_assert!(to > 0);
    x.div_ceil(to) * to
}

/// Integer ceiling division.
#[inline]
pub const fn div_ceil(a: usize, b: usize) -> usize {
    a.div_ceil(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_up_basics() {
        assert_eq!(round_up(0, 4), 0);
        assert_eq!(round_up(1, 4), 4);
        assert_eq!(round_up(4, 4), 4);
        assert_eq!(round_up(5, 4), 8);
        assert_eq!(round_up(63, 64), 64);
        assert_eq!(round_up(65, 64), 128);
    }

    #[test]
    fn constants_are_consistent() {
        assert_eq!(LANES, 64);
        assert_eq!(PHI * SIGMA * core::mem::size_of::<i8>(), CACHE_LINE);
    }
}
