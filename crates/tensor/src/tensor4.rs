//! Plain NCHW `f32` tensors for API boundaries and reference code.

use crate::align::AlignedBuf;

/// A dense 4-D `f32` tensor in NCHW order (batch, channel, height, width),
/// 64-byte aligned.
///
/// This is the *interface* representation; the kernels repack it into the
/// blocked layouts of paper Table 1 before doing real work.
#[derive(Clone, Debug)]
pub struct Tensor4 {
    buf: AlignedBuf<f32>,
    /// (N, C, H, W)
    dims: [usize; 4],
}

impl Tensor4 {
    /// Zero-filled tensor of the given dimensions.
    pub fn zeros(n: usize, c: usize, h: usize, w: usize) -> Self {
        Self {
            buf: AlignedBuf::zeroed(n * c * h * w),
            dims: [n, c, h, w],
        }
    }

    /// Build a tensor by evaluating `f(n, c, y, x)` at every coordinate.
    pub fn from_fn(
        n: usize,
        c: usize,
        h: usize,
        w: usize,
        mut f: impl FnMut(usize, usize, usize, usize) -> f32,
    ) -> Self {
        let mut t = Self::zeros(n, c, h, w);
        for in_ in 0..n {
            for ic in 0..c {
                for iy in 0..h {
                    for ix in 0..w {
                        *t.at_mut(in_, ic, iy, ix) = f(in_, ic, iy, ix);
                    }
                }
            }
        }
        t
    }

    /// Construct from an existing NCHW-ordered slice.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != n*c*h*w`.
    pub fn from_slice(n: usize, c: usize, h: usize, w: usize, data: &[f32]) -> Self {
        assert_eq!(data.len(), n * c * h * w, "Tensor4::from_slice length");
        Self {
            buf: AlignedBuf::from_slice(data),
            dims: [n, c, h, w],
        }
    }

    /// Dimensions as (N, C, H, W).
    #[inline]
    pub fn dims(&self) -> (usize, usize, usize, usize) {
        (self.dims[0], self.dims[1], self.dims[2], self.dims[3])
    }

    /// Total element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the tensor has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    #[inline]
    fn offset(&self, n: usize, c: usize, y: usize, x: usize) -> usize {
        debug_assert!(
            n < self.dims[0] && c < self.dims[1] && y < self.dims[2] && x < self.dims[3],
            "Tensor4 index out of bounds: ({n},{c},{y},{x}) vs {:?}",
            self.dims
        );
        ((n * self.dims[1] + c) * self.dims[2] + y) * self.dims[3] + x
    }

    /// Element accessor.
    #[inline]
    pub fn at(&self, n: usize, c: usize, y: usize, x: usize) -> f32 {
        self.buf.as_slice()[self.offset(n, c, y, x)]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn at_mut(&mut self, n: usize, c: usize, y: usize, x: usize) -> &mut f32 {
        let off = self.offset(n, c, y, x);
        &mut self.buf.as_mut_slice()[off]
    }

    /// Zero-padded read: coordinates outside `[0,H)×[0,W)` return 0.
    ///
    /// `y`/`x` are signed to allow reads into the padding halo.
    #[inline]
    pub fn at_padded(&self, n: usize, c: usize, y: isize, x: isize) -> f32 {
        if y < 0 || x < 0 || y as usize >= self.dims[2] || x as usize >= self.dims[3] {
            0.0
        } else {
            self.at(n, c, y as usize, x as usize)
        }
    }

    /// Flat data in NCHW order.
    #[inline]
    pub fn data(&self) -> &[f32] {
        self.buf.as_slice()
    }

    /// Mutable flat data in NCHW order.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        self.buf.as_mut_slice()
    }

    /// Largest absolute element.
    pub fn max_abs(&self) -> f32 {
        self.data().iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }

    /// Largest absolute difference against another tensor of the same shape.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &Self) -> f32 {
        assert_eq!(self.dims, other.dims, "shape mismatch in max_abs_diff");
        self.data()
            .iter()
            .zip(other.data())
            .fold(0.0f32, |m, (&a, &b)| m.max((a - b).abs()))
    }

    /// Relative L2 error `‖a−b‖₂ / max(‖b‖₂, ε)` against a reference.
    pub fn rel_l2_error(&self, reference: &Self) -> f64 {
        assert_eq!(self.dims, reference.dims, "shape mismatch in rel_l2_error");
        let mut num = 0.0f64;
        let mut den = 0.0f64;
        for (&a, &b) in self.data().iter().zip(reference.data()) {
            num += f64::from(a - b) * f64::from(a - b);
            den += f64::from(b) * f64::from(b);
        }
        (num / den.max(1e-30)).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_and_indexing() {
        let t = Tensor4::from_fn(2, 3, 4, 5, |n, c, y, x| (n * 1000 + c * 100 + y * 10 + x) as f32);
        assert_eq!(t.at(1, 2, 3, 4), 1234.0);
        assert_eq!(t.at(0, 0, 0, 0), 0.0);
        assert_eq!(t.dims(), (2, 3, 4, 5));
        assert_eq!(t.len(), 2 * 3 * 4 * 5);
    }

    #[test]
    fn padded_reads() {
        let t = Tensor4::from_fn(1, 1, 2, 2, |_, _, y, x| (y * 2 + x + 1) as f32);
        assert_eq!(t.at_padded(0, 0, -1, 0), 0.0);
        assert_eq!(t.at_padded(0, 0, 0, -1), 0.0);
        assert_eq!(t.at_padded(0, 0, 2, 0), 0.0);
        assert_eq!(t.at_padded(0, 0, 0, 2), 0.0);
        assert_eq!(t.at_padded(0, 0, 1, 1), 4.0);
    }

    #[test]
    fn error_metrics() {
        let a = Tensor4::from_fn(1, 1, 2, 2, |_, _, _, _| 1.0);
        let mut b = a.clone();
        *b.at_mut(0, 0, 1, 1) = 1.5;
        assert!((a.max_abs_diff(&b) - 0.5).abs() < 1e-7);
        assert!(a.rel_l2_error(&a) < 1e-12);
        assert!(b.max_abs() == 1.5);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn diff_shape_mismatch_panics() {
        let a = Tensor4::zeros(1, 1, 2, 2);
        let b = Tensor4::zeros(1, 1, 2, 3);
        let _ = a.max_abs_diff(&b);
    }

    #[test]
    fn from_slice_round_trip() {
        let data: Vec<f32> = (0..24).map(|i| i as f32).collect();
        let t = Tensor4::from_slice(2, 3, 2, 2, &data);
        assert_eq!(t.data(), data.as_slice());
        assert_eq!(t.at(1, 2, 1, 1), 23.0);
    }
}
