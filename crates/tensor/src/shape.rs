//! Convolution layer shapes and Winograd tile geometry.

use core::fmt;

/// Errors produced when validating a [`ConvShape`] or tile geometry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShapeError {
    /// A dimension that must be non-zero was zero.
    ZeroDim(&'static str),
    /// The padded input is smaller than the filter.
    FilterLargerThanInput { input: usize, filter: usize },
    /// Stride other than 1 requested for a Winograd algorithm.
    StrideUnsupported(usize),
    /// The requested output tile size `m` is not supported.
    TileSizeUnsupported(usize),
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShapeError::ZeroDim(d) => write!(f, "dimension `{d}` must be non-zero"),
            ShapeError::FilterLargerThanInput { input, filter } => write!(
                f,
                "padded input ({input}) is smaller than the filter ({filter})"
            ),
            ShapeError::StrideUnsupported(s) => {
                write!(f, "Winograd convolution requires stride 1, got {s}")
            }
            ShapeError::TileSizeUnsupported(m) => {
                write!(f, "unsupported Winograd output tile size m={m}")
            }
        }
    }
}

impl std::error::Error for ShapeError {}

/// A validated convolutional-layer shape.
///
/// Follows the notation of paper Table 1/2: batch `B`, input channels `C`,
/// output channels `K`, input spatial size `H × W`, square filter `r × r`,
/// with symmetric zero padding. Output size is the standard
/// `H' = (H + 2·pad − r)/stride + 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvShape {
    /// Batch size `B`.
    pub batch: usize,
    /// Input channels `C`.
    pub in_c: usize,
    /// Output channels `K`.
    pub out_c: usize,
    /// Input height `H`.
    pub h: usize,
    /// Input width `W`.
    pub w: usize,
    /// Filter size `r` (square filters).
    pub r: usize,
    /// Stride (Winograd requires 1; direct convolution accepts any).
    pub stride: usize,
    /// Symmetric zero padding.
    pub pad: usize,
}

impl ConvShape {
    /// Create a stride-1 shape with "same" padding for odd filters
    /// (`pad = (r-1)/2`), the configuration used by every layer in the
    /// paper's Table 2.
    pub fn same(batch: usize, in_c: usize, out_c: usize, hw: usize, r: usize) -> Self {
        Self {
            batch,
            in_c,
            out_c,
            h: hw,
            w: hw,
            r,
            stride: 1,
            pad: (r - 1) / 2,
        }
    }

    /// Validate all dimensions, returning `self` on success.
    pub fn validate(self) -> Result<Self, ShapeError> {
        for (name, v) in [
            ("batch", self.batch),
            ("in_c", self.in_c),
            ("out_c", self.out_c),
            ("h", self.h),
            ("w", self.w),
            ("r", self.r),
            ("stride", self.stride),
        ] {
            if v == 0 {
                return Err(ShapeError::ZeroDim(name));
            }
        }
        let padded = self.h.min(self.w) + 2 * self.pad;
        if padded < self.r {
            return Err(ShapeError::FilterLargerThanInput {
                input: padded,
                filter: self.r,
            });
        }
        Ok(self)
    }

    /// Output height `H'`.
    #[inline]
    pub fn out_h(&self) -> usize {
        (self.h + 2 * self.pad - self.r) / self.stride + 1
    }

    /// Output width `W'`.
    #[inline]
    pub fn out_w(&self) -> usize {
        (self.w + 2 * self.pad - self.r) / self.stride + 1
    }

    /// Total number of output elements (`B·K·H'·W'`).
    pub fn output_len(&self) -> usize {
        self.batch * self.out_c * self.out_h() * self.out_w()
    }

    /// Multiply-accumulate count of a direct convolution.
    pub fn direct_macs(&self) -> u64 {
        self.output_len() as u64 * (self.in_c * self.r * self.r) as u64
    }

    /// Tile geometry of `F(m×m, r×r)` applied to this shape.
    pub fn tiles(&self, m: usize) -> Result<TileGeometry, ShapeError> {
        if self.stride != 1 {
            return Err(ShapeError::StrideUnsupported(self.stride));
        }
        if m == 0 {
            return Err(ShapeError::TileSizeUnsupported(0));
        }
        let n = m + self.r - 1;
        let tiles_h = self.out_h().div_ceil(m);
        let tiles_w = self.out_w().div_ceil(m);
        Ok(TileGeometry {
            m,
            r: self.r,
            n,
            tiles_h,
            tiles_w,
            per_image: tiles_h * tiles_w,
            total: self.batch * tiles_h * tiles_w,
        })
    }
}

/// Tile geometry of an `F(m×m, r×r)` Winograd convolution over a layer.
///
/// The input image is decomposed into `tiles_h × tiles_w` tiles per image,
/// each input tile `n × n = (m+r-1)²` with an overlap of `r-1` (paper §2.2).
/// `T = n²` is both the number of elements per tile and the batch size of the
/// batched matrix multiplication (paper §4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileGeometry {
    /// Output tile size `m`.
    pub m: usize,
    /// Filter size `r`.
    pub r: usize,
    /// Input tile size `n = m + r - 1`.
    pub n: usize,
    /// Tile rows per image.
    pub tiles_h: usize,
    /// Tile columns per image.
    pub tiles_w: usize,
    /// Tiles per image (`tiles_h · tiles_w`).
    pub per_image: usize,
    /// Tiles across the whole batch (the GEMM `N` dimension).
    pub total: usize,
}

impl TileGeometry {
    /// Number of tile positions `T = n²` — the batched-GEMM batch size.
    #[inline]
    pub fn t(&self) -> usize {
        self.n * self.n
    }

    /// Theoretical multiplication reduction of this algorithm versus direct
    /// convolution: `m²·r² / (m+r-1)²` (reciprocal of the complexity factor
    /// in paper §2.2).
    pub fn mult_reduction(&self) -> f64 {
        let m = self.m as f64;
        let r = self.r as f64;
        (m * m * r * r) / ((m + r - 1.0) * (m + r - 1.0))
    }

    /// Multiply-accumulate count of the Winograd GEMM stage for a layer with
    /// `C` input channels and `K` output channels.
    pub fn gemm_macs(&self, in_c: usize, out_c: usize) -> u64 {
        self.t() as u64 * self.total as u64 * in_c as u64 * out_c as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_padding_preserves_size() {
        let s = ConvShape::same(1, 64, 64, 56, 3).validate().unwrap();
        assert_eq!(s.out_h(), 56);
        assert_eq!(s.out_w(), 56);
        assert_eq!(s.pad, 1);
    }

    #[test]
    fn valid_convolution_output() {
        let s = ConvShape {
            batch: 2,
            in_c: 3,
            out_c: 8,
            h: 10,
            w: 12,
            r: 3,
            stride: 1,
            pad: 0,
        }
        .validate()
        .unwrap();
        assert_eq!(s.out_h(), 8);
        assert_eq!(s.out_w(), 10);
        assert_eq!(s.output_len(), 2 * 8 * 8 * 10);
    }

    #[test]
    fn strided_output() {
        let s = ConvShape {
            batch: 1,
            in_c: 1,
            out_c: 1,
            h: 8,
            w: 8,
            r: 3,
            stride: 2,
            pad: 1,
        }
        .validate()
        .unwrap();
        assert_eq!(s.out_h(), 4);
        assert_eq!(s.out_w(), 4);
    }

    #[test]
    fn zero_dims_rejected() {
        let mut s = ConvShape::same(1, 4, 4, 8, 3);
        s.in_c = 0;
        assert_eq!(s.validate(), Err(ShapeError::ZeroDim("in_c")));
        let mut s = ConvShape::same(1, 4, 4, 8, 3);
        s.batch = 0;
        assert_eq!(s.validate(), Err(ShapeError::ZeroDim("batch")));
    }

    #[test]
    fn filter_larger_than_input_rejected() {
        let s = ConvShape {
            batch: 1,
            in_c: 1,
            out_c: 1,
            h: 2,
            w: 2,
            r: 5,
            stride: 1,
            pad: 0,
        };
        assert!(matches!(
            s.validate(),
            Err(ShapeError::FilterLargerThanInput { .. })
        ));
    }

    #[test]
    fn tile_geometry_f2_and_f4() {
        let s = ConvShape::same(1, 64, 64, 56, 3).validate().unwrap();
        let g2 = s.tiles(2).unwrap();
        assert_eq!(g2.n, 4);
        assert_eq!(g2.t(), 16);
        assert_eq!(g2.tiles_h, 28);
        assert_eq!(g2.per_image, 28 * 28);
        let g4 = s.tiles(4).unwrap();
        assert_eq!(g4.n, 6);
        assert_eq!(g4.t(), 36);
        assert_eq!(g4.tiles_h, 14);
    }

    #[test]
    fn tile_geometry_handles_ragged_edges() {
        // 7x7 output with m=4 -> 2x2 tiles, last tile partially outside.
        let s = ConvShape::same(1, 64, 64, 7, 3).validate().unwrap();
        let g = s.tiles(4).unwrap();
        assert_eq!(g.tiles_h, 2);
        assert_eq!(g.total, 4);
    }

    #[test]
    fn stride_not_one_rejected_for_winograd() {
        let s = ConvShape {
            stride: 2,
            ..ConvShape::same(1, 4, 4, 8, 3)
        };
        assert_eq!(s.tiles(2), Err(ShapeError::StrideUnsupported(2)));
    }

    #[test]
    fn mult_reduction_matches_paper() {
        // Paper §2.2: reduction factor (m+r-1)^2 / (m^2 r^2); mult_reduction
        // is the inverse (savings): F(2,3) saves 2.25x, F(4,3) saves 4x.
        let s = ConvShape::same(1, 64, 64, 16, 3).validate().unwrap();
        let g2 = s.tiles(2).unwrap();
        assert!((g2.mult_reduction() - 2.25).abs() < 1e-12);
        let g4 = s.tiles(4).unwrap();
        assert!((g4.mult_reduction() - 4.0).abs() < 1e-12);
        let g6 = s.tiles(6).unwrap();
        assert!((g6.mult_reduction() - 5.0625).abs() < 1e-12);
    }

    #[test]
    fn macs_accounting() {
        let s = ConvShape::same(1, 64, 128, 8, 3).validate().unwrap();
        assert_eq!(s.direct_macs(), (8 * 8 * 128) as u64 * (64 * 9) as u64);
        let g = s.tiles(4).unwrap();
        // 2x2 tiles of 6x6, T = 36.
        assert_eq!(g.gemm_macs(64, 128), 36 * 4 * 64 * 128);
    }
}
