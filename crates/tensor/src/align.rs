//! 64-byte-aligned heap buffers.
//!
//! Every array that the LoWino kernels touch is allocated through
//! [`AlignedBuf`], which guarantees [`crate::CACHE_LINE`]-byte alignment and a
//! length that is a multiple of the element count per cache line. This is the
//! prerequisite for the aligned 512-bit loads/stores and the non-temporal
//! cache-line stores of paper §4.2.1.

use core::fmt;
use std::alloc::{alloc_zeroed, dealloc, handle_alloc_error, Layout};

use crate::CACHE_LINE;

/// Sealed marker for plain-old-data element types usable in [`AlignedBuf`].
///
/// # Safety
///
/// Implementors must be `Copy`, have no padding, no invalid bit patterns and
/// be valid when zero-initialised.
pub unsafe trait Pod: Copy + Default + Send + Sync + 'static {}

unsafe impl Pod for u8 {}
unsafe impl Pod for i8 {}
unsafe impl Pod for i16 {}
unsafe impl Pod for u16 {}
unsafe impl Pod for i32 {}
unsafe impl Pod for u32 {}
unsafe impl Pod for f32 {}
unsafe impl Pod for i64 {}
unsafe impl Pod for u64 {}
unsafe impl Pod for f64 {}

/// A fixed-size, zero-initialised, 64-byte-aligned heap buffer of POD
/// elements.
///
/// Unlike `Vec<T>`, the alignment is guaranteed regardless of `T`, and the
/// buffer cannot grow (kernel workspaces are sized once by the planner and
/// then reused, per the "reusing collections" idiom).
pub struct AlignedBuf<T: Pod> {
    ptr: *mut T,
    len: usize,
}

// SAFETY: AlignedBuf owns its allocation exclusively; T: Send + Sync.
unsafe impl<T: Pod> Send for AlignedBuf<T> {}
unsafe impl<T: Pod> Sync for AlignedBuf<T> {}

/// An empty buffer (no allocation) — the start state of grow-on-demand
/// scratch slots.
impl<T: Pod> Default for AlignedBuf<T> {
    fn default() -> Self {
        Self::zeroed(0)
    }
}

impl<T: Pod> AlignedBuf<T> {
    /// Allocate a zero-filled buffer of `len` elements, 64-byte aligned.
    ///
    /// A zero-length buffer performs no allocation.
    ///
    /// # Panics
    ///
    /// Panics if the byte size overflows `isize` (allocation-size limit).
    pub fn zeroed(len: usize) -> Self {
        if len == 0 {
            return Self {
                ptr: core::ptr::NonNull::dangling().as_ptr(),
                len: 0,
            };
        }
        let layout = Self::layout(len);
        // SAFETY: layout has non-zero size (len > 0, size_of::<T>() > 0 for
        // all Pod impls) and valid alignment.
        let ptr = unsafe { alloc_zeroed(layout) } as *mut T;
        if ptr.is_null() {
            handle_alloc_error(layout);
        }
        Self { ptr, len }
    }

    /// Allocate and fill from a slice.
    pub fn from_slice(src: &[T]) -> Self {
        let mut buf = Self::zeroed(src.len());
        buf.as_mut_slice().copy_from_slice(src);
        buf
    }

    fn layout(len: usize) -> Layout {
        let bytes = len
            .checked_mul(core::mem::size_of::<T>())
            .expect("AlignedBuf size overflow");
        Layout::from_size_align(bytes, CACHE_LINE.max(core::mem::align_of::<T>()))
            .expect("invalid AlignedBuf layout")
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Immutable view of the whole buffer.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        // SAFETY: ptr is valid for len elements (or dangling with len == 0,
        // which is allowed for zero-length slices), properly aligned, and the
        // contents are always initialised (zeroed at allocation).
        unsafe { core::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// Mutable view of the whole buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        // SAFETY: as above, plus we hold &mut self so the access is unique.
        unsafe { core::slice::from_raw_parts_mut(self.ptr, self.len) }
    }

    /// Raw const pointer to the first element (64-byte aligned).
    #[inline]
    pub fn as_ptr(&self) -> *const T {
        self.ptr
    }

    /// Raw mutable pointer to the first element (64-byte aligned).
    #[inline]
    pub fn as_mut_ptr(&mut self) -> *mut T {
        self.ptr
    }

    /// Overwrite every element with zero.
    pub fn zero_fill(&mut self) {
        // SAFETY: the buffer is valid for `len` elements and all Pod types
        // are valid all-zeroes.
        unsafe { core::ptr::write_bytes(self.ptr, 0, self.len) };
    }

    /// Overwrite every element with `value`.
    pub fn fill(&mut self, value: T) {
        self.as_mut_slice().fill(value);
    }
}

impl<T: Pod> Drop for AlignedBuf<T> {
    fn drop(&mut self) {
        if self.len != 0 {
            // SAFETY: ptr was allocated in `zeroed` with exactly this layout.
            unsafe { dealloc(self.ptr as *mut u8, Self::layout(self.len)) };
        }
    }
}

impl<T: Pod> Clone for AlignedBuf<T> {
    fn clone(&self) -> Self {
        Self::from_slice(self.as_slice())
    }
}

impl<T: Pod + fmt::Debug> fmt::Debug for AlignedBuf<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AlignedBuf(len={})", self.len)
    }
}

impl<T: Pod> core::ops::Index<usize> for AlignedBuf<T> {
    type Output = T;
    #[inline]
    fn index(&self, i: usize) -> &T {
        &self.as_slice()[i]
    }
}

impl<T: Pod> core::ops::IndexMut<usize> for AlignedBuf<T> {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut T {
        &mut self.as_mut_slice()[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_is_64_bytes() {
        for len in [1usize, 3, 64, 65, 1000] {
            let b = AlignedBuf::<f32>::zeroed(len);
            assert_eq!(b.as_ptr() as usize % CACHE_LINE, 0, "len={len}");
            let b = AlignedBuf::<u8>::zeroed(len);
            assert_eq!(b.as_ptr() as usize % CACHE_LINE, 0, "len={len}");
            let b = AlignedBuf::<i32>::zeroed(len);
            assert_eq!(b.as_ptr() as usize % CACHE_LINE, 0, "len={len}");
        }
    }

    #[test]
    fn zeroed_contents() {
        let b = AlignedBuf::<i32>::zeroed(129);
        assert!(b.as_slice().iter().all(|&x| x == 0));
        assert_eq!(b.len(), 129);
        assert!(!b.is_empty());
    }

    #[test]
    fn zero_length_buffer() {
        let b = AlignedBuf::<f32>::zeroed(0);
        assert!(b.is_empty());
        assert_eq!(b.as_slice(), &[] as &[f32]);
    }

    #[test]
    fn from_slice_round_trip() {
        let data: Vec<i16> = (0..100).map(|i| i as i16 - 50).collect();
        let b = AlignedBuf::from_slice(&data);
        assert_eq!(b.as_slice(), data.as_slice());
    }

    #[test]
    fn clone_is_deep() {
        let mut a = AlignedBuf::<u8>::zeroed(16);
        a.fill(7);
        let b = a.clone();
        a.fill(9);
        assert!(b.as_slice().iter().all(|&x| x == 7));
        assert!(a.as_slice().iter().all(|&x| x == 9));
    }

    #[test]
    fn fill_and_zero_fill() {
        let mut b = AlignedBuf::<f32>::zeroed(10);
        b.fill(1.5);
        assert!(b.as_slice().iter().all(|&x| x == 1.5));
        b.zero_fill();
        assert!(b.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn index_access() {
        let mut b = AlignedBuf::<i32>::zeroed(4);
        b[2] = 42;
        assert_eq!(b[2], 42);
        assert_eq!(b[0], 0);
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AlignedBuf<f32>>();
        assert_send_sync::<AlignedBuf<i8>>();
    }
}
