//! The customised blocked activation layout of paper Table 1.
//!
//! Activations are stored as `B × [C/φσ] × H × W × (φσ)` with the `φσ = 64`
//! channel block innermost. Channels are padded up to a multiple of 64 with
//! zeros. Consequences (paper §4.1):
//!
//! * every per-pixel channel group is 256 consecutive bytes of `f32`
//!   (4 aligned 512-bit registers), enabling fully vectorised transforms that
//!   operate lane-wise across 64 channels;
//! * the Winograd input transform writes exactly one 64-byte cache line of
//!   quantised `u8` per (tile-position, channel-block), matching the paper's
//!   non-temporal cache-line stores;
//! * adjacent computations touch a small contiguous region, reducing cache
//!   and TLB misses.

use crate::align::AlignedBuf;
use crate::tensor4::Tensor4;
use crate::{round_up, LANES};

/// Backing storage of a [`BlockedImage`]: either an owned allocation or a
/// borrowed window of a caller-managed arena (the graph engine's
/// liveness-planned activation arena — see `lowino-nn`).
#[derive(Debug)]
enum Storage {
    /// The image owns its buffer (the default; every public constructor).
    Owned(AlignedBuf<f32>),
    /// A raw window into an external arena. The creator
    /// ([`BlockedImage::from_arena_ptr`]) guarantees validity, alignment
    /// and exclusivity for the image's lifetime.
    Arena {
        ptr: *mut f32,
        len: usize,
    },
}

impl Storage {
    #[inline]
    fn as_slice(&self) -> &[f32] {
        match self {
            Storage::Owned(buf) => buf.as_slice(),
            // SAFETY: `from_arena_ptr`'s contract — valid for `len` reads,
            // initialised, exclusive to this image.
            Storage::Arena { ptr, len } => unsafe { core::slice::from_raw_parts(*ptr, *len) },
        }
    }

    #[inline]
    fn as_mut_slice(&mut self) -> &mut [f32] {
        match self {
            Storage::Owned(buf) => buf.as_mut_slice(),
            // SAFETY: as above, plus `&mut self` makes the access unique.
            Storage::Arena { ptr, len } => unsafe {
                core::slice::from_raw_parts_mut(*ptr, *len)
            },
        }
    }

    #[inline]
    fn as_ptr(&self) -> *const f32 {
        match self {
            Storage::Owned(buf) => buf.as_ptr(),
            Storage::Arena { ptr, .. } => *ptr,
        }
    }
}

/// A batch of images in the blocked `B × [C/64] × H × W × 64` `f32` layout.
#[derive(Debug)]
pub struct BlockedImage {
    buf: Storage,
    batch: usize,
    /// Logical (unpadded) channel count.
    channels: usize,
    /// Channel blocks: `ceil(channels / 64)`.
    c_blocks: usize,
    h: usize,
    w: usize,
}

// SAFETY: the owned variant is Send + Sync via `AlignedBuf`; the arena
// variant's window is exclusive to this image by `from_arena_ptr`'s
// contract, so sharing the image shares an exclusively-owned region —
// exactly the `AlignedBuf` situation with the allocation held elsewhere.
unsafe impl Send for BlockedImage {}
unsafe impl Sync for BlockedImage {}

/// Deep copy: cloning an arena-backed image detaches it into an owned
/// buffer (clones never alias the arena).
impl Clone for BlockedImage {
    fn clone(&self) -> Self {
        Self {
            buf: Storage::Owned(AlignedBuf::from_slice(self.buf.as_slice())),
            batch: self.batch,
            channels: self.channels,
            c_blocks: self.c_blocks,
            h: self.h,
            w: self.w,
        }
    }
}

impl BlockedImage {
    /// Allocate a zero-filled blocked image.
    pub fn zeros(batch: usize, channels: usize, h: usize, w: usize) -> Self {
        let c_blocks = round_up(channels, LANES) / LANES;
        Self {
            buf: Storage::Owned(AlignedBuf::zeroed(batch * c_blocks * h * w * LANES)),
            batch,
            channels,
            c_blocks,
            h,
            w,
        }
    }

    /// Number of `f32` elements a blocked image of this shape occupies
    /// (the planner's slot-size unit): `batch · ⌈C/64⌉ · H · W · 64`.
    pub fn storage_len(batch: usize, channels: usize, h: usize, w: usize) -> usize {
        let c_blocks = round_up(channels, LANES) / LANES;
        batch * c_blocks * h * w * LANES
    }

    /// Wrap a window of a caller-managed arena as a blocked image —
    /// **no allocation**, the graph engine's activation-slot constructor.
    ///
    /// # Safety
    ///
    /// * `ptr` must be valid for reads and writes of
    ///   [`Self::storage_len`]`(batch, channels, h, w)` `f32`s for the
    ///   whole lifetime of the returned image, 64-byte aligned, and
    ///   initialised (e.g. a window of a zeroed [`AlignedBuf`]);
    /// * the window must not be accessed through any other pointer while
    ///   the image (or anything borrowed from it) is alive, except via the
    ///   image's own `unsafe` shared-writer escapes
    ///   ([`Self::lanes_ptr_shared`]) under their documented schedules;
    /// * channel-padding lanes must be zero (or be zeroed by the first
    ///   writer) — every consumer assumes padding reads as `0.0`.
    pub unsafe fn from_arena_ptr(
        ptr: *mut f32,
        batch: usize,
        channels: usize,
        h: usize,
        w: usize,
    ) -> Self {
        let c_blocks = round_up(channels, LANES) / LANES;
        debug_assert!(ptr.addr().is_multiple_of(crate::CACHE_LINE));
        Self {
            buf: Storage::Arena {
                ptr,
                len: batch * c_blocks * h * w * LANES,
            },
            batch,
            channels,
            c_blocks,
            h,
            w,
        }
    }

    /// Whether this image borrows an external arena window (planner
    /// introspection for tests).
    pub fn is_arena_backed(&self) -> bool {
        matches!(self.buf, Storage::Arena { .. })
    }

    /// Pack an NCHW tensor into the blocked layout (padding channels with 0).
    pub fn from_nchw(t: &Tensor4) -> Self {
        let (n, c, h, w) = t.dims();
        let mut img = Self::zeros(n, c, h, w);
        for b in 0..n {
            for ch in 0..c {
                let (cb, cl) = (ch / LANES, ch % LANES);
                for y in 0..h {
                    for x in 0..w {
                        let off = img.offset(b, cb, y, x) + cl;
                        img.buf.as_mut_slice()[off] = t.at(b, ch, y, x);
                    }
                }
            }
        }
        img
    }

    /// Unpack back to an NCHW tensor (dropping channel padding).
    pub fn to_nchw(&self) -> Tensor4 {
        let mut t = Tensor4::zeros(self.batch, self.channels, self.h, self.w);
        for b in 0..self.batch {
            for ch in 0..self.channels {
                let (cb, cl) = (ch / LANES, ch % LANES);
                for y in 0..self.h {
                    for x in 0..self.w {
                        *t.at_mut(b, ch, y, x) = self.buf.as_slice()[self.offset(b, cb, y, x) + cl];
                    }
                }
            }
        }
        t
    }

    /// (batch, logical channels, H, W).
    #[inline]
    pub fn dims(&self) -> (usize, usize, usize, usize) {
        (self.batch, self.channels, self.h, self.w)
    }

    /// Number of 64-channel blocks (channels padded).
    #[inline]
    pub fn c_blocks(&self) -> usize {
        self.c_blocks
    }

    /// Flat offset of the 64-lane group at `(b, c_block, y, x)`.
    #[inline]
    pub fn offset(&self, b: usize, c_block: usize, y: usize, x: usize) -> usize {
        debug_assert!(b < self.batch && c_block < self.c_blocks && y < self.h && x < self.w);
        (((b * self.c_blocks + c_block) * self.h + y) * self.w + x) * LANES
    }

    /// The 64 channel lanes at a pixel.
    #[inline]
    pub fn lanes(&self, b: usize, c_block: usize, y: usize, x: usize) -> &[f32] {
        let off = self.offset(b, c_block, y, x);
        &self.buf.as_slice()[off..off + LANES]
    }

    /// Mutable 64 channel lanes at a pixel.
    #[inline]
    pub fn lanes_mut(&mut self, b: usize, c_block: usize, y: usize, x: usize) -> &mut [f32] {
        let off = self.offset(b, c_block, y, x);
        &mut self.buf.as_mut_slice()[off..off + LANES]
    }

    /// Copy the 64 lanes at `(b, c_block, y, x)` into `dst`, reading zeros
    /// when `(y, x)` falls outside the image (zero-padding halo).
    #[inline]
    pub fn read_lanes_padded(&self, b: usize, c_block: usize, y: isize, x: isize, dst: &mut [f32]) {
        debug_assert_eq!(dst.len(), LANES);
        if y < 0 || x < 0 || y as usize >= self.h || x as usize >= self.w {
            dst.fill(0.0);
        } else {
            dst.copy_from_slice(self.lanes(b, c_block, y as usize, x as usize));
        }
    }

    /// Whole buffer (blocked order).
    #[inline]
    pub fn data(&self) -> &[f32] {
        self.buf.as_slice()
    }

    /// Mutable whole buffer (blocked order).
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        self.buf.as_mut_slice()
    }

    /// Largest absolute value over the logical (unpadded) channels.
    pub fn max_abs(&self) -> f32 {
        // Padding lanes are always zero, so scanning everything is fine.
        self.data().iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }

    /// Raw mutable pointer to the 64-lane group at `(b, c_block, y, x)`
    /// through a shared reference — used by parallel writers whose static
    /// schedule guarantees disjoint pixel regions per thread.
    ///
    /// # Safety
    ///
    /// Callers must not create overlapping concurrent writes.
    #[inline]
    pub unsafe fn lanes_ptr_shared(&self, b: usize, c_block: usize, y: usize, x: usize) -> *mut f32 {
        let off = self.offset(b, c_block, y, x);
        self.buf.as_ptr().add(off) as *mut f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize, c: usize, h: usize, w: usize) -> Tensor4 {
        Tensor4::from_fn(n, c, h, w, |b, ch, y, x| {
            (b * 7919 + ch * 131 + y * 17 + x) as f32 * 0.25 - 3.0
        })
    }

    #[test]
    fn round_trip_exact_block() {
        let t = sample(2, 64, 5, 6);
        let img = BlockedImage::from_nchw(&t);
        assert_eq!(img.c_blocks(), 1);
        assert_eq!(img.to_nchw().max_abs_diff(&t), 0.0);
    }

    #[test]
    fn round_trip_padded_channels() {
        for c in [1, 3, 63, 65, 100, 130] {
            let t = sample(1, c, 3, 4);
            let img = BlockedImage::from_nchw(&t);
            assert_eq!(img.c_blocks(), c.div_ceil(64), "c={c}");
            assert_eq!(img.to_nchw().max_abs_diff(&t), 0.0, "c={c}");
        }
    }

    #[test]
    fn channel_padding_is_zero() {
        let t = sample(1, 3, 2, 2);
        let img = BlockedImage::from_nchw(&t);
        let lanes = img.lanes(0, 0, 0, 0);
        for l in 3..64 {
            assert_eq!(lanes[l], 0.0);
        }
    }

    #[test]
    fn lanes_are_contiguous_per_pixel() {
        let t = sample(1, 128, 2, 2);
        let img = BlockedImage::from_nchw(&t);
        // Channel 64..128 live in block 1.
        let lanes = img.lanes(0, 1, 1, 1);
        for l in 0..64 {
            assert_eq!(lanes[l], t.at(0, 64 + l, 1, 1));
        }
    }

    #[test]
    fn padded_reads_return_zero_outside() {
        let t = sample(1, 4, 2, 2);
        let img = BlockedImage::from_nchw(&t);
        let mut dst = [1.0f32; 64];
        img.read_lanes_padded(0, 0, -1, 0, &mut dst);
        assert!(dst.iter().all(|&v| v == 0.0));
        img.read_lanes_padded(0, 0, 0, 2, &mut dst);
        assert!(dst.iter().all(|&v| v == 0.0));
        img.read_lanes_padded(0, 0, 1, 1, &mut dst);
        assert_eq!(dst[0], t.at(0, 0, 1, 1));
    }

    #[test]
    fn offsets_are_64_byte_like_strides() {
        let img = BlockedImage::zeros(1, 64, 4, 4);
        assert_eq!(img.offset(0, 0, 0, 1) - img.offset(0, 0, 0, 0), 64);
        assert_eq!(img.offset(0, 0, 1, 0) - img.offset(0, 0, 0, 0), 4 * 64);
    }

    #[test]
    fn arena_backed_image_round_trips_and_clones_deeply() {
        let t = sample(1, 3, 2, 2);
        let owned = BlockedImage::from_nchw(&t);
        let len = BlockedImage::storage_len(1, 3, 2, 2);
        assert_eq!(owned.data().len(), len);

        let mut arena = crate::AlignedBuf::<f32>::zeroed(len);
        // SAFETY: window covers exactly one image and is used only through
        // `img` below.
        let mut img = unsafe { BlockedImage::from_arena_ptr(arena.as_mut_ptr(), 1, 3, 2, 2) };
        assert!(img.is_arena_backed());
        img.data_mut().copy_from_slice(owned.data());
        assert_eq!(img.to_nchw().data(), t.data());

        // Cloning detaches from the arena: mutating the clone must not be
        // visible through the arena window.
        let mut clone = img.clone();
        assert!(!clone.is_arena_backed());
        clone.data_mut()[0] += 5.0;
        assert_eq!(img.data()[0], owned.data()[0]);
    }
}
