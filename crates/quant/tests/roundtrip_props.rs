//! Property tests for the symmetric linear quantizer (paper Eq. 4–7).
//!
//! Eq. 4–6 define `Q(x) = S_INT8(α·x)` with `α = 127/τ` and
//! `Q'(q) = q/α`; Eq. 7 bounds the round-trip error of any in-range value
//! by half a quantization step, `|Q'(Q(x)) − x| ≤ 0.5/α`. These are the
//! invariants the Winograd-domain calibration relies on, checked here over
//! sampled thresholds and inputs via `lowino-testkit` (fixed default seed;
//! replay any failure with `LOWINO_PROP_SEED`).

use lowino_quant::QParams;
use lowino_testkit::{prop_assert, property, vec_of, Rng};

property! {
    /// Eq. 7: the round-trip error of an in-threshold value never exceeds
    /// half a step, across five decades of threshold.
    #[cases(256)]
    fn round_trip_error_within_half_step(
        tau in 0.001f32..100.0,
        frac in -1.0f32..1.0,
    ) {
        let q = QParams::from_threshold(tau);
        let x = frac * tau;
        let back = q.dequantize(q.quantize(x));
        let err = (back - x).abs();
        let bound = 0.5 / q.alpha + 1e-6;
        prop_assert!(err <= bound, "tau={tau} x={x} back={back} err={err} > {bound}");
    }
}

property! {
    /// Out-of-threshold values saturate to the symmetric extremes ±127 and
    /// de-quantize back to ±τ (up to f32 rounding in α itself).
    #[cases(128)]
    fn saturating_inputs_clamp_to_qmax(
        tau in 0.001f32..100.0,
        over in 1.01f32..10.0,
        sign in -1.0f32..1.0,
    ) {
        let s = if sign < 0.0 { -1.0f32 } else { 1.0 };
        let q = QParams::from_threshold(tau);
        let x = s * tau * over;
        let got = q.quantize(x);
        prop_assert!(i32::from(got) == (s as i32) * 127, "tau={tau} x={x} q={got}");
        let back = q.dequantize(got);
        prop_assert!(
            (back - s * tau).abs() <= tau * 1e-5,
            "tau={tau} back={back}"
        );
    }
}

property! {
    /// `from_max_abs` calibration: the largest-magnitude element uses the
    /// full INT8 range, and every element round-trips within Eq. 7's bound.
    #[cases(64)]
    fn max_abs_calibration_round_trips(data in vec_of(-50.0f32..50.0, 1usize..64)) {
        let q = QParams::from_max_abs(&data);
        let m = data.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        if m == 0.0 {
            prop_assert!(q == QParams::UNIT, "all-zero data must degrade to UNIT");
            return Ok(());
        }
        let bound = 0.5 / q.alpha + 1e-6;
        let mut peak = 0i32;
        for &x in &data {
            let code = q.quantize(x);
            peak = peak.max(i32::from(code).abs());
            let err = (q.dequantize(code) - x).abs();
            prop_assert!(err <= bound, "x={x} err={err} > {bound} (m={m})");
        }
        prop_assert!(peak == 127, "max element must hit ±127, got {peak}");
    }
}

property! {
    /// The ±128 compensation identity (paper Eq. 9) in plain scalar i32:
    /// `Σ(q_i+128)·w_i − 128·Σw_i == Σ q_i·w_i` for any quantized vectors.
    /// (The SIMD tiers are checked against the same identity in
    /// `lowino-simd`'s tests; this pins the algebra the kernels rely on.)
    #[cases(128)]
    fn compensation_identity_scalar(
        pairs in vec_of((-127i32..128, -128i32..128), 1usize..96),
    ) {
        let lhs: i64 = pairs
            .iter()
            .map(|&(q, w)| i64::from(q + 128) * i64::from(w))
            .sum::<i64>()
            - 128 * pairs.iter().map(|&(_, w)| i64::from(w)).sum::<i64>();
        let rhs: i64 = pairs.iter().map(|&(q, w)| i64::from(q) * i64::from(w)).sum();
        prop_assert!(lhs == rhs, "lhs={lhs} rhs={rhs}");
    }
}

property! {
    /// The fused product de-quantization scale `1/(α_V·α_U)` matches
    /// de-quantizing each factor separately, to f32 rounding.
    #[cases(128)]
    fn product_dequant_matches_pairwise(
        tau_a in 0.01f32..50.0,
        tau_b in 0.01f32..50.0,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = Rng::seed_from_u64(seed);
        let a = QParams::from_threshold(tau_a);
        let b = QParams::from_threshold(tau_b);
        let qa = rng.range_i32(-127, 128) as i8;
        let qb = rng.range_i32(-127, 128) as i8;
        let fused = f32::from(qa) * f32::from(qb) * a.product_dequant(&b);
        let pair = a.dequantize(qa) * b.dequantize(qb);
        let tol = pair.abs().max(1e-12) * 1e-5;
        prop_assert!((fused - pair).abs() <= tol, "fused={fused} pair={pair}");
    }
}
