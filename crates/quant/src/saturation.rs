//! Saturation accounting for quantized tensors.
//!
//! The linear quantizer (Eq. 4) clamps to the symmetric INT8 range
//! `[−127, 127]`; how often that clamp actually fires is the quantity
//! LANCE-style analyses track to judge whether a threshold `τ` is too
//! tight. These helpers count clamp hits in already-quantized buffers so
//! the executors can feed the `quant/*` trace counters without the quant
//! crate growing a trace dependency (callers emit the counts).
//!
//! Two encodings appear in the pipeline:
//!
//! * signed `i8` values straight from the quantizer — saturated at `±127`;
//! * `+128`-compensated `u8` GEMM panel values (Eq. 9) — the same clamp
//!   bounds after the shift, i.e. `1` (−127) and `255` (+127). `0` would be
//!   −128, which the symmetric quantizer never produces.

/// Count values in a `+128`-compensated u8 buffer that sit on the clamp
/// bounds (`1` ⇔ −127, `255` ⇔ +127).
pub fn count_saturated_u8(q: &[u8]) -> u64 {
    q.iter().filter(|&&x| x == 1 || x == 255).count() as u64
}

/// Count values in a signed i8 buffer that sit on the clamp bounds (±127).
pub fn count_saturated_i8(q: &[i8]) -> u64 {
    q.iter().filter(|&&x| x == 127 || x == -127).count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u8_counts_only_the_compensated_bounds() {
        let q = [0u8, 1, 2, 128, 254, 255, 255, 1];
        // 0 is not a clamp value (−128 is unreachable); 1 and 255 are.
        assert_eq!(count_saturated_u8(&q), 4);
        assert_eq!(count_saturated_u8(&[]), 0);
    }

    #[test]
    fn i8_counts_both_signs() {
        let q = [0i8, 127, -127, -128, 126, 127];
        // −128 is outside the symmetric range and not a clamp target.
        assert_eq!(count_saturated_i8(&q), 3);
    }

    #[test]
    fn matches_quantizer_clamp_behaviour() {
        use crate::QParams;
        let q = QParams::from_threshold(1.0);
        let vals = [-3.0f32, -1.0, -0.5, 0.0, 0.9, 2.5];
        let quantized: Vec<i8> = vals.iter().map(|&x| q.quantize(x)).collect();
        // Exactly the out-of-range inputs (|x| ≥ τ) land on ±127.
        assert_eq!(count_saturated_i8(&quantized), 3);
        let compensated: Vec<u8> = quantized.iter().map(|&x| (x as i16 + 128) as u8).collect();
        assert_eq!(count_saturated_u8(&compensated), 3);
    }
}
