//! # lowino-quant
//!
//! Post-training quantization substrate (paper §3).
//!
//! LoWino quantizes **in the Winograd domain**: the linear quantization
//! function with saturation (Eq. 4) is applied to the *transformed* inputs
//! `Bᵀ d B` and filters `G g Gᵀ`, after the transforms have amplified the
//! value range — which is what makes large-tile low-precision Winograd
//! viable. This crate provides the scheme-agnostic machinery:
//!
//! * [`QParams`] — the symmetric linear quantizer `Q(x) = S_INT8(α·x)` with
//!   `α = (2^{b−1}−1)/τ` (Eq. 4–5) and its inverse (Eq. 6);
//! * [`Histogram`] — fixed-bin magnitude histograms of activation
//!   distributions (the `P(X)` of Eq. 7);
//! * [`calibrate`] — threshold selection: simple max-abs, and the
//!   KL-divergence calibration of Eq. 7 (TensorRT-style \[29\]) run on a few
//!   hundred unlabelled samples.

pub mod calibrate;
pub mod histogram;
pub mod linear;
pub mod saturation;

pub use calibrate::{calibrate_kl, Calibration};
pub use histogram::Histogram;
pub use linear::QParams;
pub use saturation::{count_saturated_i8, count_saturated_u8};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_calibrated_quantization() {
        // Bell-shaped bulk plus rare large outliers: KL calibration clips
        // the outliers, max-abs does not. (A *uniform* bulk would quantize
        // losslessly at any range and KL would rightly keep the full range.)
        let mut s = 0x5DEECE66Du64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f32 / (1u64 << 53) as f32
        };
        let mut data: Vec<f32> = (0..50_000)
            .map(|_| (0..8).map(|_| next()).sum::<f32>() - 4.0)
            .collect();
        data.extend_from_slice(&[40.0, -38.0, 42.0]); // 3 outliers
        let mut h = Histogram::new(2048);
        h.record(&data);
        let tau_kl = calibrate_kl(&h).tau;
        let tau_max = h.max_abs();
        assert!(tau_kl < 0.5 * tau_max, "tau_kl={tau_kl} tau_max={tau_max}");
        // The calibrated quantizer must represent the *bulk* far better.
        let q_kl = QParams::from_threshold(tau_kl);
        let q_max = QParams::from_threshold(tau_max);
        let bulk_mse = |q: QParams| -> f64 {
            data.iter()
                .filter(|x| x.abs() <= 1.0)
                .map(|&x| {
                    let e = f64::from(q.dequantize(q.quantize(x)) - x);
                    e * e
                })
                .sum::<f64>()
        };
        assert!(bulk_mse(q_kl) < bulk_mse(q_max) / 4.0);
    }
}
