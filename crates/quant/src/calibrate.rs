//! Threshold calibration (paper Eq. 7).
//!
//! `τ = argmin_τ' D_KL( P(X) ‖ P(Q_τ'(X)) )` — the TensorRT-style \[29\]
//! KL-divergence search over a magnitude histogram collected from a few
//! hundred unlabelled samples. For each candidate clipping index `i` the
//! reference distribution is the histogram clipped at `i` (outlier mass
//! folded into the last bin) and the candidate distribution is the same
//! mass squeezed through 128 quantization levels and re-expanded.

use crate::histogram::Histogram;

/// Number of INT8 quantization levels on the magnitude axis.
const QUANT_LEVELS: usize = 128;

/// Result of a calibration run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    /// The selected clipping threshold `τ`.
    pub tau: f32,
    /// The KL divergence at the selected threshold.
    pub divergence: f64,
    /// The clipping-bin index that won the search.
    pub bin_index: usize,
}

/// KL-divergence threshold calibration over a recorded histogram.
///
/// Returns `τ = ‖X‖∞` when the histogram is degenerate (empty, all zeros,
/// or fewer occupied bins than quantization levels — nothing to clip).
pub fn calibrate_kl(hist: &Histogram) -> Calibration {
    let nbins = hist.bin_count();
    let bins = hist.bins();
    let width = hist.bin_width();
    let fallback = Calibration {
        tau: if hist.max_abs() > 0.0 { hist.max_abs() } else { 1.0 },
        divergence: 0.0,
        bin_index: nbins,
    };
    if hist.total() == 0 || hist.max_abs() == 0.0 || nbins <= QUANT_LEVELS {
        return fallback;
    }
    // KL over a near-empty histogram is meaningless (the sparse candidate
    // distribution trivially matches the reference at aggressive clips and
    // the search returns a tiny, catastrophic threshold). Calibration needs
    // a real sample population; below that, max-abs is the honest choice.
    if hist.total() < 8 * QUANT_LEVELS as u64 {
        return fallback;
    }

    // Index one past the last occupied bin.
    let last_occupied = match bins.iter().rposition(|&c| c > 0) {
        Some(i) => i + 1,
        None => return fallback,
    };
    if last_occupied <= QUANT_LEVELS {
        return fallback;
    }

    let mut best: Option<(f64, usize)> = None;
    let mut p = vec![0f64; last_occupied];
    let mut q = vec![0f64; last_occupied];

    for i in (QUANT_LEVELS..=last_occupied).step_by(1) {
        // Reference distribution: clip at i, folding the tail into bin i-1.
        let p_slice = &mut p[..i];
        for (j, v) in p_slice.iter_mut().enumerate() {
            *v = bins[j] as f64;
        }
        let tail: u64 = bins[i..].iter().sum();
        p_slice[i - 1] += tail as f64;

        // Candidate: squeeze bins[..i] into QUANT_LEVELS groups, expand back
        // proportionally over the non-empty source bins.
        let q_slice = &mut q[..i];
        q_slice.fill(0.0);
        for level in 0..QUANT_LEVELS {
            let start = level * i / QUANT_LEVELS;
            let end = ((level + 1) * i / QUANT_LEVELS).max(start + 1).min(i);
            let group: u64 = bins[start..end].iter().sum();
            if group == 0 {
                continue;
            }
            let nonzero = bins[start..end].iter().filter(|&&c| c > 0).count();
            let share = group as f64 / nonzero as f64;
            for j in start..end {
                if bins[j] > 0 {
                    q_slice[j] = share;
                }
            }
        }
        // NB: unlike P, the candidate Q deliberately does NOT receive the
        // outlier fold — Q models what an INT8 quantizer clipped at this
        // threshold can represent, so the folded tail mass is exactly the
        // mismatch the KL term must penalise.
        let d = kl_divergence(p_slice, q_slice);
        if best.is_none_or(|(bd, _)| d < bd) {
            best = Some((d, i));
        }
    }

    match best {
        Some((divergence, i)) => {
            // Clipped-mass floor: KL can justify aggressive clipping on
            // multi-scale mixtures (e.g. the Winograd-domain distribution,
            // whose per-tile-position scales differ by 1-2 orders of
            // magnitude) even though the clipped tail carries real signal.
            // Never clip more than 1% of the observed mass.
            let total = hist.total() as f64;
            let mut i = i;
            let mut tail: u64 = bins[i..].iter().sum();
            while i < last_occupied && tail as f64 > 0.01 * total {
                tail -= bins[i];
                i += 1;
            }
            Calibration {
                tau: (i as f32 + 0.5) * width,
                divergence,
                bin_index: i,
            }
        }
        None => fallback,
    }
}

/// `D_KL(P ‖ Q)` over unnormalised histograms (both are normalised inside).
/// Bins where `p == 0` contribute nothing; `p > 0, q == 0` is smoothed with
/// a small epsilon rather than returning ∞ (standard calibration practice).
pub fn kl_divergence(p: &[f64], q: &[f64]) -> f64 {
    debug_assert_eq!(p.len(), q.len());
    let sp: f64 = p.iter().sum();
    let sq: f64 = q.iter().sum();
    if sp <= 0.0 || sq <= 0.0 {
        return f64::INFINITY;
    }
    let eps = 1e-12;
    let mut d = 0.0;
    for (&pi, &qi) in p.iter().zip(q) {
        if pi > 0.0 {
            let pn = pi / sp;
            let qn = (qi / sq).max(eps);
            d += pn * (pn / qn).ln();
        }
    }
    d.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-normal data (sum of 8 xorshift uniforms).
    fn normalish(n: usize, sigma: f32, seed: u64) -> Vec<f32> {
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f32 / (1u64 << 53) as f32
        };
        (0..n)
            .map(|_| {
                let u: f32 = (0..8).map(|_| next()).sum::<f32>() - 4.0;
                u * sigma
            })
            .collect()
    }

    #[test]
    fn kl_divergence_basics() {
        let p = [1.0, 2.0, 3.0];
        assert_eq!(kl_divergence(&p, &p), 0.0);
        let q = [3.0, 2.0, 1.0];
        assert!(kl_divergence(&p, &q) > 0.0);
        assert_eq!(kl_divergence(&[0.0], &[0.0]), f64::INFINITY);
    }

    #[test]
    fn gaussian_with_outliers_clips_below_max() {
        let mut data = normalish(50_000, 1.0, 7);
        data.extend_from_slice(&[25.0, -30.0, 28.0]); // rare outliers
        let mut h = Histogram::new(2048);
        h.record(&data);
        let c = calibrate_kl(&h);
        assert!(c.tau < 15.0, "tau={} should clip the outliers", c.tau);
        assert!(c.tau > 1.0, "tau={} should cover the bulk", c.tau);
    }

    #[test]
    fn uniform_data_keeps_nearly_full_range() {
        let data: Vec<f32> = (0..100_000).map(|i| (i % 1000) as f32 / 1000.0).collect();
        let mut h = Histogram::new(2048);
        h.record(&data);
        let c = calibrate_kl(&h);
        assert!(
            c.tau > 0.9 * h.max_abs(),
            "tau={} max={}",
            c.tau,
            h.max_abs()
        );
    }

    #[test]
    fn degenerate_histograms_fall_back() {
        let h = Histogram::new(2048);
        let c = calibrate_kl(&h);
        assert_eq!(c.tau, 1.0); // empty -> unit threshold

        let mut h = Histogram::new(2048);
        h.record(&[0.0; 100]);
        assert_eq!(calibrate_kl(&h).tau, 1.0);

        let mut h = Histogram::new(2048);
        h.record(&[0.5]);
        // Single value in the top bin: the search must keep (almost) the
        // full range — clipping a point mass has infinite KL cost.
        let tau = calibrate_kl(&h).tau;
        assert!((0.499..=0.52).contains(&tau), "tau={tau}");
    }

    #[test]
    fn tau_is_within_observed_range() {
        let data = normalish(10_000, 3.0, 99);
        let mut h = Histogram::new(2048);
        h.record(&data);
        let c = calibrate_kl(&h);
        assert!(c.tau > 0.0 && c.tau <= h.range() * 1.001);
        assert!(c.divergence.is_finite());
    }
}
