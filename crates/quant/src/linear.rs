//! The symmetric linear quantizer of paper Eq. 4–6.

/// Symmetric INT8 quantization parameters.
///
/// `Q(x) = S_INT8(α·x)` with `α = (2^{b−1}−1)/τ = 127/τ` (Eq. 4–5) and
/// de-quantization `Q'(q) = α⁻¹·q` (Eq. 6). Zero-point is always 0
/// (symmetric); the unsigned-operand requirement of `vpdpbusd` is handled
/// separately by the ±128 compensation (paper §4.3.3), not by an asymmetric
/// zero-point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QParams {
    /// The scale `α` (multiplied when quantizing).
    pub alpha: f32,
}

impl QParams {
    /// Identity-ish degenerate quantizer used when a tensor is all zeros.
    pub const UNIT: QParams = QParams { alpha: 1.0 };

    /// From a clipping threshold `τ`: `α = 127/τ` (Eq. 5 with `b = 8`).
    ///
    /// A non-positive or non-finite `τ` yields the degenerate unit scale
    /// (the tensor is all zeros — nothing to represent).
    pub fn from_threshold(tau: f32) -> Self {
        if tau > 0.0 && tau.is_finite() {
            QParams { alpha: 127.0 / tau }
        } else {
            QParams::UNIT
        }
    }

    /// From data: `τ = ‖X‖∞` (the non-calibrated fallback mentioned in §3).
    pub fn from_max_abs(data: &[f32]) -> Self {
        let m = data.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        Self::from_threshold(m)
    }

    /// The threshold `τ` this scale represents.
    pub fn tau(&self) -> f32 {
        127.0 / self.alpha
    }

    /// Quantize one value (Eq. 4).
    #[inline]
    pub fn quantize(&self, x: f32) -> i8 {
        lowino_simd_free_saturate(x * self.alpha)
    }

    /// De-quantize one value (Eq. 6).
    #[inline]
    pub fn dequantize(&self, q: i8) -> f32 {
        f32::from(q) / self.alpha
    }

    /// Quantize a slice.
    pub fn quantize_slice(&self, src: &[f32], dst: &mut [i8]) {
        debug_assert_eq!(src.len(), dst.len());
        for (d, &s) in dst.iter_mut().zip(src) {
            *d = self.quantize(s);
        }
    }

    /// De-quantize a slice.
    pub fn dequantize_slice(&self, src: &[i8], dst: &mut [f32]) {
        debug_assert_eq!(src.len(), dst.len());
        for (d, &s) in dst.iter_mut().zip(src) {
            *d = self.dequantize(s);
        }
    }

    /// Combined de-quantization scale of a product of two quantized
    /// operands: `1/(α_V·α_U)` — what the output transform multiplies the
    /// INT32 GEMM result by.
    pub fn product_dequant(&self, other: &QParams) -> f32 {
        1.0 / (self.alpha * other.alpha)
    }
}

/// Local copy of the saturating conversion (kept dependency-free; the
/// behaviour is pinned to `lowino_simd::saturate_to_i8` by a test in the
/// conv crate).
#[inline]
fn lowino_simd_free_saturate(x: f32) -> i8 {
    // Ties-to-even, matching `lowino_simd::saturate_to_i8` (cvtps2dq
    // semantics); the pinning test lives in the conv crate.
    x.round_ties_even().clamp(-127.0, 127.0) as i8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq5_scale() {
        let q = QParams::from_threshold(2.0);
        assert!((q.alpha - 63.5).abs() < 1e-6);
        assert!((q.tau() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn quantize_saturates_at_threshold() {
        let q = QParams::from_threshold(1.0);
        assert_eq!(q.quantize(1.0), 127);
        assert_eq!(q.quantize(-1.0), -127);
        assert_eq!(q.quantize(5.0), 127);
        assert_eq!(q.quantize(-5.0), -127);
        assert_eq!(q.quantize(0.0), 0);
    }

    #[test]
    fn round_trip_error_bound() {
        let q = QParams::from_threshold(4.0);
        for i in -400..=400 {
            let x = i as f32 / 100.0;
            let e = (q.dequantize(q.quantize(x)) - x).abs();
            assert!(e <= 0.5 / q.alpha + 1e-6, "x={x} e={e}");
        }
    }

    #[test]
    fn degenerate_thresholds() {
        assert_eq!(QParams::from_threshold(0.0), QParams::UNIT);
        assert_eq!(QParams::from_threshold(-1.0), QParams::UNIT);
        assert_eq!(QParams::from_threshold(f32::NAN), QParams::UNIT);
        assert_eq!(QParams::from_threshold(f32::INFINITY), QParams::UNIT);
        assert_eq!(QParams::from_max_abs(&[]), QParams::UNIT);
        assert_eq!(QParams::from_max_abs(&[0.0, 0.0]), QParams::UNIT);
    }

    #[test]
    fn from_max_abs_uses_linf() {
        let q = QParams::from_max_abs(&[0.5, -3.0, 2.0]);
        assert!((q.tau() - 3.0).abs() < 1e-6);
        assert_eq!(q.quantize(-3.0), -127);
    }

    #[test]
    fn slice_round_trip() {
        let q = QParams::from_threshold(10.0);
        let src = [0.0f32, 1.0, -2.5, 9.99, -10.0];
        let mut qd = [0i8; 5];
        let mut back = [0f32; 5];
        q.quantize_slice(&src, &mut qd);
        q.dequantize_slice(&qd, &mut back);
        for (a, b) in src.iter().zip(&back) {
            assert!((a - b).abs() <= 0.5 / q.alpha + 1e-6);
        }
    }

    #[test]
    fn product_dequant() {
        let a = QParams::from_threshold(1.0); // α = 127
        let b = QParams::from_threshold(127.0); // α = 1
        assert!((a.product_dequant(&b) - 1.0 / 127.0).abs() < 1e-9);
    }
}
