//! Magnitude histograms of activation distributions (the `P(X)` of Eq. 7).
//!
//! Calibration runs in two conceptual passes over the sample set: the first
//! establishes `‖X‖∞`, the second fills fixed-width bins. [`Histogram`]
//! supports single-pass usage too: it grows its range geometrically and
//! re-bins, so streaming activation batches through it is exact enough for
//! threshold search while touching each value once.

/// A fixed-bin histogram of absolute values over `[0, range]`.
#[derive(Debug, Clone)]
pub struct Histogram {
    bins: Vec<u64>,
    range: f32,
    max_abs: f32,
    total: u64,
}

impl Histogram {
    /// Create with `bins` buckets (TensorRT-style calibration uses 2048).
    ///
    /// # Panics
    ///
    /// Panics if `bins < 2`.
    pub fn new(bins: usize) -> Self {
        assert!(bins >= 2, "histogram needs at least 2 bins");
        Self {
            bins: vec![0; bins],
            range: 0.0,
            max_abs: 0.0,
            total: 0,
        }
    }

    /// Number of bins.
    pub fn bin_count(&self) -> usize {
        self.bins.len()
    }

    /// Bin contents.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Upper edge of the histogram range.
    pub fn range(&self) -> f32 {
        self.range
    }

    /// Largest |value| observed.
    pub fn max_abs(&self) -> f32 {
        self.max_abs
    }

    /// Total recorded count (zeros included).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Width of one bin.
    pub fn bin_width(&self) -> f32 {
        self.range / self.bins.len() as f32
    }

    /// Record a batch of values (absolute magnitudes are histogrammed;
    /// non-finite values are ignored).
    pub fn record(&mut self, data: &[f32]) {
        // Pass 1 over this batch: does the range need to grow?
        let batch_max = data
            .iter()
            .filter(|v| v.is_finite())
            .fold(0.0f32, |m, &v| m.max(v.abs()));
        if batch_max > self.range {
            self.grow_to(batch_max);
        }
        if self.range == 0.0 {
            // All data so far is exactly zero.
            self.total += data.iter().filter(|v| v.is_finite()).count() as u64;
            return;
        }
        let n = self.bins.len();
        let inv_w = n as f32 / self.range;
        for &v in data {
            if !v.is_finite() {
                continue;
            }
            let a = v.abs();
            let idx = ((a * inv_w) as usize).min(n - 1);
            self.bins[idx] += 1;
            self.total += 1;
        }
        self.max_abs = self.max_abs.max(batch_max);
    }

    /// Grow the range to cover `new_max`, re-binning existing counts.
    ///
    /// The new range is the old range doubled until it covers `new_max`
    /// (geometric growth bounds the number of re-bins to O(log range)).
    fn grow_to(&mut self, new_max: f32) {
        if self.range == 0.0 {
            self.range = new_max;
            return;
        }
        let mut new_range = self.range;
        while new_range < new_max {
            new_range *= 2.0;
        }
        let n = self.bins.len();
        let mut new_bins = vec![0u64; n];
        let scale = self.range / new_range; // old width / new width per index
        for (i, &c) in self.bins.iter().enumerate() {
            if c > 0 {
                // Centre of old bin i mapped into the new binning.
                let centre = (i as f32 + 0.5) * scale;
                let idx = (centre as usize).min(n - 1);
                new_bins[idx] += c;
            }
        }
        self.bins = new_bins;
        self.range = new_range;
    }

    /// Merge another histogram (e.g. per-thread partials) into this one.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bins.len(), other.bins.len(), "bin count mismatch");
        if other.total == 0 {
            return;
        }
        if other.range > self.range {
            self.grow_to(other.range);
        }
        if self.range == 0.0 {
            self.total += other.total;
            return;
        }
        let n = self.bins.len();
        let scale = other.range / self.range;
        for (i, &c) in other.bins.iter().enumerate() {
            if c > 0 {
                let centre = (i as f32 + 0.5) * scale;
                let idx = (centre as usize).min(n - 1);
                self.bins[idx] += c;
            }
        }
        self.total += other.total;
        self.max_abs = self.max_abs.max(other.max_abs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_correct_bins() {
        let mut h = Histogram::new(4);
        h.record(&[0.1, 0.9, -0.6, 0.3, 1.0]);
        // range = 1.0, widths 0.25: |0.1|->0, |0.9|->3, 0.6->2, 0.3->1, 1.0->3
        assert_eq!(h.range(), 1.0);
        assert_eq!(h.bins(), &[1, 1, 1, 2]);
        assert_eq!(h.total(), 5);
        assert_eq!(h.max_abs(), 1.0);
    }

    #[test]
    fn grows_geometrically_preserving_total() {
        let mut h = Histogram::new(64);
        h.record(&[0.5; 100]);
        h.record(&[3.9; 50]); // forces growth 0.5 -> 4.0
        assert_eq!(h.total(), 150);
        assert!(h.range() >= 3.9);
        assert_eq!(h.bins().iter().sum::<u64>(), 150);
    }

    #[test]
    fn all_zero_data() {
        let mut h = Histogram::new(16);
        h.record(&[0.0; 10]);
        assert_eq!(h.total(), 10);
        assert_eq!(h.max_abs(), 0.0);
        assert_eq!(h.range(), 0.0);
    }

    #[test]
    fn non_finite_values_ignored() {
        let mut h = Histogram::new(16);
        h.record(&[1.0, f32::NAN, f32::INFINITY, f32::NEG_INFINITY, -1.0]);
        assert_eq!(h.total(), 2);
        assert_eq!(h.max_abs(), 1.0);
    }

    #[test]
    fn merge_preserves_mass_and_max() {
        let mut a = Histogram::new(128);
        a.record(&[0.2, 0.4, 0.6]);
        let mut b = Histogram::new(128);
        b.record(&[5.0, 2.5]);
        a.merge(&b);
        assert_eq!(a.total(), 5);
        assert_eq!(a.max_abs(), 5.0);
        assert_eq!(a.bins().iter().sum::<u64>(), 5);
    }

    #[test]
    fn merge_empty_is_noop() {
        let mut a = Histogram::new(8);
        a.record(&[1.0]);
        let b = Histogram::new(8);
        a.merge(&b);
        assert_eq!(a.total(), 1);
    }

    #[test]
    #[should_panic(expected = "at least 2 bins")]
    fn too_few_bins_panics() {
        let _ = Histogram::new(1);
    }

    #[test]
    fn rebinning_keeps_distribution_shape() {
        // Record uniform data, force a growth, check mass stays ~uniform
        // over the occupied prefix.
        let mut h = Histogram::new(256);
        let data: Vec<f32> = (0..10_000).map(|i| i as f32 / 10_000.0).collect();
        h.record(&data);
        h.record(&[2.0]); // doubles the range
        let occupied: u64 = h.bins()[..128].iter().sum();
        assert!(occupied >= 9_990, "occupied={occupied}");
    }
}
