//! Integration: executors are reusable workspaces — repeated execution,
//! changing inputs, and mixed algorithm fleets must stay consistent.

use lowino::prelude::*;

fn weights(spec: &ConvShape, seed: usize) -> Tensor4 {
    Tensor4::from_fn(spec.out_c, spec.in_c, spec.r, spec.r, |k, c, y, x| {
        ((k * 29 + c * 11 + y * 3 + x + seed) as f32 * 0.41).sin() * 0.2
    })
}

fn image(spec: &ConvShape, seed: usize) -> BlockedImage {
    BlockedImage::from_nchw(&Tensor4::from_fn(
        spec.batch,
        spec.in_c,
        spec.h,
        spec.w,
        |b, c, y, x| ((b * 7 + c * 3 + y * 13 + x * 5 + seed) as f32 * 0.19).cos(),
    ))
}

#[test]
fn layer_workspaces_are_reusable_across_inputs() {
    // The planner allocates panels once; runs with different inputs must
    // not leak state between executions.
    let spec = ConvShape::same(1, 32, 32, 12, 3).validate().unwrap();
    let w = weights(&spec, 0);
    let cal = image(&spec, 0);
    let mut engine = Engine::new(1);
    let mut layer = LayerBuilder::new(spec, &w)
        .algorithm(AlgoChoice::Fixed(Algorithm::LoWino { m: 4 }))
        .calibration_samples(vec![cal.clone()])
        .build(&engine)
        .unwrap();

    // Fresh layer per input as the no-reuse baseline.
    let fresh = |img: &BlockedImage| -> Tensor4 {
        let mut engine2 = Engine::new(1);
        let mut l = LayerBuilder::new(spec, &w)
            .algorithm(AlgoChoice::Fixed(Algorithm::LoWino { m: 4 }))
            .calibration_samples(vec![cal.clone()])
            .build(&engine2)
            .unwrap();
        let mut out = engine2.alloc_output(&spec);
        engine2.execute(&mut l, img, &mut out).unwrap();
        out.to_nchw()
    };

    for seed in [1usize, 2, 3, 1] {
        let img = image(&spec, seed);
        let mut out = engine.alloc_output(&spec);
        engine.execute(&mut layer, &img, &mut out).unwrap();
        assert_eq!(
            out.to_nchw().max_abs_diff(&fresh(&img)),
            0.0,
            "reused workspace diverged on input {seed}"
        );
    }
}

#[test]
fn repeated_execution_is_bit_stable() {
    let spec = ConvShape::same(1, 16, 64, 10, 3).validate().unwrap();
    let w = weights(&spec, 5);
    let img = image(&spec, 5);
    for algo in [
        Algorithm::DirectInt8,
        Algorithm::LoWino { m: 2 },
        Algorithm::DownScale { m: 2 },
        Algorithm::UpCast { m: 2 },
        Algorithm::WinogradF32 { m: 4 },
    ] {
        let mut engine = Engine::new(3);
        let mut layer = LayerBuilder::new(spec, &w)
            .algorithm(AlgoChoice::Fixed(algo))
            .calibration_samples(vec![img.clone()])
            .build(&engine)
            .unwrap();
        let mut prev: Option<Tensor4> = None;
        for _ in 0..3 {
            let mut out = engine.alloc_output(&spec);
            engine.execute(&mut layer, &img, &mut out).unwrap();
            let now = out.to_nchw();
            if let Some(p) = &prev {
                assert_eq!(p.max_abs_diff(&now), 0.0, "{algo} not deterministic");
            }
            prev = Some(now);
        }
    }
}

#[test]
fn quantized_algorithms_agree_with_each_other() {
    // All healthy INT8/INT16 schemes approximate the same convolution; they
    // must agree with each other to within the sum of their budgets.
    let spec = ConvShape::same(1, 32, 32, 12, 3).validate().unwrap();
    let w = weights(&spec, 9);
    let img = image(&spec, 9);
    let mut engine = Engine::new(1);
    let mut outputs = Vec::new();
    for algo in [
        Algorithm::DirectInt8,
        Algorithm::LoWino { m: 2 },
        Algorithm::UpCast { m: 2 },
        Algorithm::DownScale { m: 2 },
    ] {
        let mut layer = LayerBuilder::new(spec, &w)
            .algorithm(AlgoChoice::Fixed(algo))
            .calibration_samples(vec![img.clone()])
            .build(&engine)
            .unwrap();
        let mut out = engine.alloc_output(&spec);
        engine.execute(&mut layer, &img, &mut out).unwrap();
        outputs.push((algo, out.to_nchw()));
    }
    for i in 0..outputs.len() {
        for j in i + 1..outputs.len() {
            let err = outputs[i].1.rel_l2_error(&outputs[j].1);
            assert!(
                err < 0.35,
                "{} vs {}: {err}",
                outputs[i].0,
                outputs[j].0
            );
        }
    }
}

#[test]
fn large_batch_matches_per_image_execution() {
    // Running a batch at once equals running each image separately.
    let spec_batch = ConvShape::same(3, 16, 16, 8, 3).validate().unwrap();
    let spec_one = ConvShape::same(1, 16, 16, 8, 3).validate().unwrap();
    let w = weights(&spec_batch, 4);
    let full = Tensor4::from_fn(3, 16, 8, 8, |b, c, y, x| {
        ((b * 31 + c * 7 + y * 3 + x) as f32 * 0.37).sin()
    });
    let img_full = BlockedImage::from_nchw(&full);

    let mut engine = Engine::new(2);
    let mut layer = LayerBuilder::new(spec_batch, &w)
        .algorithm(AlgoChoice::Fixed(Algorithm::LoWino { m: 2 }))
        .input_scale(QParams::from_threshold(8.0))
        .build(&engine)
        .unwrap();
    let mut out = engine.alloc_output(&spec_batch);
    engine.execute(&mut layer, &img_full, &mut out).unwrap();
    let batched = out.to_nchw();

    let mut single_layer = LayerBuilder::new(spec_one, &w)
        .algorithm(AlgoChoice::Fixed(Algorithm::LoWino { m: 2 }))
        .input_scale(QParams::from_threshold(8.0))
        .build(&engine)
        .unwrap();
    for b in 0..3 {
        let one = Tensor4::from_fn(1, 16, 8, 8, |_, c, y, x| full.at(b, c, y, x));
        let img = BlockedImage::from_nchw(&one);
        let mut out1 = engine.alloc_output(&spec_one);
        engine.execute(&mut single_layer, &img, &mut out1).unwrap();
        let got = out1.to_nchw();
        for k in 0..16 {
            for y in 0..8 {
                for x in 0..8 {
                    assert_eq!(
                        got.at(0, k, y, x),
                        batched.at(b, k, y, x),
                        "b={b} k={k} ({y},{x})"
                    );
                }
            }
        }
    }
}
