//! Cross-tier differential test: every executor must produce **bitwise
//! identical** outputs on every vector tier the host supports.
//!
//! The compiled transform tapes, the dpbusd GEMM micro-kernels and the
//! quantize/dequantize epilogues all dispatch on [`SimdTier`]; the whole
//! dispatch design rests on the scalar tier being the semantics and the
//! wide tiers being pure speedups. The per-crate property tests check
//! individual kernels — this test checks the composition: five executors
//! × several layer shapes × every supported tier, end to end.
//!
//! Tiers are forced through [`ConvContext::with_tier`] (not the
//! `LOWINO_FORCE_TIER` env var) so the test is self-contained and can
//! exercise *every* supported tier in one process.

use lowino::prelude::*;
use lowino::SimdTier;
use lowino_conv::{
    calibrate_spatial, calibrate_winograd_domain, ConvContext, DirectInt8Conv, DownScaleConv,
    LoWinoConv, UpCastConv, WinogradF32Conv,
};

fn weights(spec: &ConvShape, seed: usize) -> Tensor4 {
    Tensor4::from_fn(spec.out_c, spec.in_c, spec.r, spec.r, |k, c, y, x| {
        ((k * 29 + c * 11 + y * 3 + x + seed) as f32 * 0.41).sin() * 0.2
    })
}

fn image(spec: &ConvShape, seed: usize) -> BlockedImage {
    BlockedImage::from_nchw(&Tensor4::from_fn(
        spec.batch,
        spec.in_c,
        spec.h,
        spec.w,
        |b, c, y, x| ((b * 7 + c * 3 + y * 13 + x * 5 + seed) as f32 * 0.19).cos(),
    ))
}

/// The layer shapes: a small square layer, a ragged one whose channels
/// cross the 64-lane block boundary, and a batched rectangular one.
fn shapes() -> Vec<ConvShape> {
    vec![
        ConvShape::same(1, 16, 16, 8, 3).validate().unwrap(),
        ConvShape::same(1, 65, 70, 9, 3).validate().unwrap(),
        ConvShape::same(2, 32, 16, 10, 3).validate().unwrap(),
    ]
}

/// Run one executor on every supported tier and assert all outputs are
/// bitwise identical to the scalar (last-listed) tier's.
fn assert_tier_identity<F>(label: &str, spec: &ConvShape, mut run: F)
where
    F: FnMut(&mut ConvContext) -> Tensor4,
{
    let tiers = SimdTier::available();
    assert!(
        tiers.contains(&SimdTier::Scalar),
        "scalar tier must always be available"
    );
    let mut reference: Option<(SimdTier, Tensor4)> = None;
    for &tier in &tiers {
        // Two thread counts per tier: partitioning must not matter either.
        for threads in [1usize, 3] {
            let mut ctx = ConvContext::with_tier(threads, tier);
            let out = run(&mut ctx);
            match &reference {
                None => reference = Some((tier, out)),
                Some((ref_tier, want)) => {
                    let diff = want.max_abs_diff(&out);
                    assert_eq!(
                        diff, 0.0,
                        "{label} {spec:?}: tier {tier} (t{threads}) diverges \
                         from tier {ref_tier} by {diff}"
                    );
                }
            }
        }
    }
}

#[test]
fn lowino_is_bitwise_identical_across_tiers() {
    for (i, spec) in shapes().into_iter().enumerate() {
        let w = weights(&spec, i);
        let img = image(&spec, i);
        let cal = calibrate_winograd_domain(&spec, 2, std::slice::from_ref(&img)).unwrap();
        let mut conv = LoWinoConv::new(spec, 2, &w, cal).unwrap();
        assert_tier_identity("LoWino", &spec, |ctx| {
            let mut out = BlockedImage::zeros(spec.batch, spec.out_c, spec.out_h(), spec.out_w());
            conv.execute(&img, &mut out, ctx).unwrap();
            out.to_nchw()
        });
    }
}

#[test]
fn winograd_f32_is_bitwise_identical_across_tiers() {
    for (i, spec) in shapes().into_iter().enumerate() {
        let w = weights(&spec, i);
        let img = image(&spec, i);
        let mut conv = WinogradF32Conv::new(spec, 4, &w).unwrap();
        assert_tier_identity("WinogradF32", &spec, |ctx| {
            let mut out = BlockedImage::zeros(spec.batch, spec.out_c, spec.out_h(), spec.out_w());
            conv.execute(&img, &mut out, ctx).unwrap();
            out.to_nchw()
        });
    }
}

#[test]
fn downscale_is_bitwise_identical_across_tiers() {
    for (i, spec) in shapes().into_iter().enumerate() {
        let w = weights(&spec, i);
        let img = image(&spec, i);
        let cal = calibrate_spatial(std::slice::from_ref(&img)).unwrap();
        let mut conv = DownScaleConv::new(spec, 2, &w, cal).unwrap();
        assert_tier_identity("DownScale", &spec, |ctx| {
            let mut out = BlockedImage::zeros(spec.batch, spec.out_c, spec.out_h(), spec.out_w());
            conv.execute(&img, &mut out, ctx).unwrap();
            out.to_nchw()
        });
    }
}

#[test]
fn upcast_is_bitwise_identical_across_tiers() {
    for (i, spec) in shapes().into_iter().enumerate() {
        let w = weights(&spec, i);
        let img = image(&spec, i);
        let cal = calibrate_spatial(std::slice::from_ref(&img)).unwrap();
        let mut conv = UpCastConv::new(spec, 2, &w, cal).unwrap();
        assert_tier_identity("UpCast", &spec, |ctx| {
            let mut out = BlockedImage::zeros(spec.batch, spec.out_c, spec.out_h(), spec.out_w());
            conv.execute(&img, &mut out, ctx).unwrap();
            out.to_nchw()
        });
    }
}

#[test]
fn direct_i8_is_bitwise_identical_across_tiers() {
    for (i, spec) in shapes().into_iter().enumerate() {
        let w = weights(&spec, i);
        let img = image(&spec, i);
        let cal = calibrate_spatial(std::slice::from_ref(&img)).unwrap();
        let mut conv = DirectInt8Conv::new(spec, &w, cal).unwrap();
        assert_tier_identity("DirectInt8", &spec, |ctx| {
            let mut out = BlockedImage::zeros(spec.batch, spec.out_c, spec.out_h(), spec.out_w());
            conv.execute(&img, &mut out, ctx).unwrap();
            out.to_nchw()
        });
    }
}
