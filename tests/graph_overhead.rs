//! Regression guard for the PR-8 ablation finding: the graph engine's
//! per-op bookkeeping (arena view construction, epilogue dispatch, the
//! op-table walk) costs ~2–4% over the per-layer interpreter on
//! MiniVGG-sized layers, and that gap was **accepted** rather than
//! optimised (see EXPERIMENTS.md, "Graph-vs-per_layer gap"). This test
//! pins the acceptance: if a future change silently widens the gap past
//! the bound below, the guard trips and the regression has to be
//! re-justified instead of riding in unnoticed.
//!
//! Methodology matches the `ablation/graph_overhead` bench: identical
//! weights and input, same batch/threads, and the two paths are timed
//! **interleaved** (one rep each, alternating) so drift — thermal,
//! frequency, a noisy neighbour on the CI host — lands on both sides
//! equally. Medians over 31 reps; debug-build timings are meaningless,
//! so the guard is `#[ignore]`d and ci/check.sh runs it in release.

use std::time::Instant;

use lowino::{Algorithm, Tensor4};
use lowino_nn::{mini_vgg, CompiledGraph, GraphSpec, QuantizedModel, QuantizedSpec};
use lowino_testkit::Rng;

/// Accepted graph-engine overhead over the per-layer interpreter.
/// EXPERIMENTS.md puts the real gap at ~2–4%; the bound leaves headroom
/// for CI noise while still catching anything that doubles it.
const MAX_OVERHEAD: f64 = 1.15;
const REPS: usize = 31;

fn median_ns(mut v: Vec<u64>) -> u64 {
    v.sort_unstable();
    v[v.len() / 2]
}

#[test]
#[ignore = "timing guard: run in release (ci/check.sh does)"]
fn graph_engine_overhead_stays_within_accepted_bound() {
    let (batch, threads) = (4usize, 2usize);
    let mut rng = Rng::seed_from_u64(11);
    let mut x = Tensor4::zeros(batch, 3, 8, 8);
    rng.fill_f32(x.data_mut(), -1.0, 1.0);
    let calib = x.clone();

    let mut model = mini_vgg(3, 8, 3, 31);
    let spec = GraphSpec { m: 2, batch, threads };
    let mut graph = CompiledGraph::compile(&mut model, &calib, &spec).expect("compile graph");

    let mut model = mini_vgg(3, 8, 3, 31);
    let mut per_layer = QuantizedModel::from_model(
        &mut model,
        &calib,
        &QuantizedSpec {
            algorithm: Algorithm::LoWino { m: 2 },
            per_position: false,
            batch,
            threads,
        },
    )
    .expect("convert per-layer model");

    let mut logits = Tensor4::zeros(batch, 3, 1, 1);

    // Warm both paths: scratch arenas grow, wisdom settles, caches fill.
    for _ in 0..3 {
        graph.execute(&x, &mut logits).expect("graph warm-up");
        lowino_testkit::black_box(per_layer.logits(&x));
    }

    let mut graph_ns = Vec::with_capacity(REPS);
    let mut layer_ns = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        let t = Instant::now();
        graph.execute(&x, &mut logits).expect("graph rep");
        lowino_testkit::black_box(logits.data()[0]);
        graph_ns.push(t.elapsed().as_nanos() as u64);

        let t = Instant::now();
        let out = per_layer.logits(&x);
        lowino_testkit::black_box(out.data()[0]);
        layer_ns.push(t.elapsed().as_nanos() as u64);
    }

    let g = median_ns(graph_ns);
    let p = median_ns(layer_ns);
    let ratio = g as f64 / p as f64;
    eprintln!(
        "graph_overhead guard: graph {g} ns vs per_layer {p} ns (ratio {ratio:.4}, \
         bound {MAX_OVERHEAD})"
    );
    assert!(
        ratio <= MAX_OVERHEAD,
        "graph engine overhead regressed: {g} ns vs per-layer {p} ns \
         (ratio {ratio:.4} > {MAX_OVERHEAD}); the ~2-4% accepted gap from the PR-8 \
         ablation (EXPERIMENTS.md) has widened — re-run ablation/graph_overhead \
         and either fix the bookkeeping or re-justify the bound"
    );
}
