//! Trace-asserted zero-stall seeding (ISSUE 8 acceptance): compiling a
//! graph with empty wisdom must seed every conv's GEMM blocking from the
//! cost model (`tune/seeded` instants present), and a seeded forward pass
//! must run **zero** `tune/measurement` instants — no first-request stall,
//! ever.

use lowino::{Blocking, ConvShape, GemmShape, SimdTier, Tensor4, TunePolicy, Wisdom};
use lowino::prelude::*;
use lowino_nn::{mini_vgg, CompiledGraph, GraphSpec};
use lowino_testkit::Rng;
use lowino_trace::ring::EventKind;

fn count_instants(name: &str) -> usize {
    lowino_trace::drain()
        .iter()
        .flat_map(|t| t.events.iter())
        .filter(|e| e.kind == EventKind::Instant && e.name == name)
        .count()
}

#[test]
fn graph_compile_seeds_and_forward_never_measures() {
    let mut model = mini_vgg(3, 8, 3, 0xC0FFEE);
    let mut rng = Rng::seed_from_u64(7);
    let mut x = Tensor4::zeros(2, 3, 8, 8);
    rng.fill_f32(x.data_mut(), -1.0, 1.0);
    let spec = GraphSpec { m: 2, batch: 2, threads: 2 };

    lowino_trace::set_enabled(true);
    lowino_trace::reset();

    let mut graph = CompiledGraph::compile(&mut model, &x, &spec).expect("compile");
    let seeded = count_instants("tune/seeded");
    assert!(seeded > 0, "compile must seed conv blockings (got no tune/seeded instants)");
    assert_eq!(
        count_instants("tune/measurement"),
        0,
        "compile must never measure"
    );

    // Two forward passes (first grows scratch, second is steady state):
    // still zero measurements.
    lowino_trace::reset();
    let mut logits = Tensor4::zeros(2, graph.classes(), 1, 1);
    graph.execute(&x, &mut logits).expect("forward 1");
    graph.execute(&x, &mut logits).expect("forward 2");
    assert_eq!(
        count_instants("tune/measurement"),
        0,
        "seeded forward passes must never run a measurement sweep"
    );
    lowino_trace::set_enabled(false);
    assert!(logits.data().iter().all(|v| v.is_finite()));
}

#[test]
fn layer_builder_seeds_from_wisdom_exactly() {
    // An exact wisdom entry for the layer's GEMM shape must be what the
    // builder installs (SeedSource::Exact == payload 0 on the instant).
    let spec = ConvShape::same(1, 64, 64, 8, 3).validate().unwrap();
    let weights = Tensor4::from_fn(64, 64, 3, 3, |k, c, y, x| {
        ((k + c + y + x) as f32 * 0.37).sin() * 0.1
    });
    let input = Tensor4::from_fn(1, 64, 8, 8, |_, c, y, x| ((c + y) as f32 * 0.2 + x as f32).cos());
    let img = BlockedImage::from_nchw(&input);

    let geom = spec.tiles(2).unwrap();
    let gemm_shape = GemmShape { t: geom.t(), n: geom.total, c: spec.in_c, k: spec.out_c };
    let planted = Blocking { n_blk: 7, c_blk: 16, k_blk: 64, row_blk: 2, col_blk: 1 };

    let mut engine = Engine::new(1);
    let tier = engine.context().tier;
    engine.context_mut().wisdom.insert(tier, &gemm_shape, planted);

    lowino_trace::set_enabled(true);
    lowino_trace::reset();
    let mut layer = LayerBuilder::new(spec, &weights)
        .algorithm(AlgoChoice::Fixed(Algorithm::LoWino { m: 2 }))
        .calibration_samples(vec![img.clone()])
        .build(&engine)
        .unwrap();
    let exact_seeds = lowino_trace::drain()
        .iter()
        .flat_map(|t| t.events.iter())
        .filter(|e| e.kind == EventKind::Instant && e.name == "tune/seeded" && e.arg == 0)
        .count();
    assert!(exact_seeds > 0, "exact wisdom hit must seed with SeedSource::Exact");
    lowino_trace::set_enabled(false);

    let mut out = engine.alloc_output(&spec);
    engine.execute(&mut layer, &img, &mut out).unwrap();
    assert!(out.max_abs() > 0.0);
}

#[test]
fn class_wisdom_generalizes_to_neighbour_shapes_in_the_engine() {
    // Wisdom for one shape seeds a *different* shape in the same
    // power-of-two class (SeedSource::Class == payload 1), with no
    // measurement — the shape-class layer working end to end.
    let tier = SimdTier::detect();
    let mut wisdom = Wisdom::new();
    let tuned_shape = GemmShape { t: 16, n: 200, c: 40, k: 70 };
    wisdom.insert(tier, &tuned_shape, Blocking::default_for(&tuned_shape));

    // Same class (t:16→4, n:129..=256→8, c:33..=64→6, k:65..=128→7)...
    let neighbour = GemmShape { t: 16, n: 190, c: 64, k: 100 };
    let (b, src) = wisdom.blocking_for(tier, &neighbour);
    assert_eq!(src, lowino::SeedSource::Class);
    assert!(b.validate().is_ok());

    // ...but a distant shape falls through to the cost model.
    let distant = GemmShape { t: 36, n: 4096, c: 512, k: 512 };
    let (_, src) = wisdom.blocking_for(tier, &distant);
    assert_eq!(src, lowino::SeedSource::Model);
}

#[test]
fn off_policy_engine_still_works_without_seeding_machinery() {
    let spec = ConvShape::same(1, 16, 16, 8, 3).validate().unwrap();
    let weights =
        Tensor4::from_fn(16, 16, 3, 3, |k, c, y, x| ((k + c + y + x) as f32 * 0.3).sin() * 0.2);
    let input = Tensor4::from_fn(1, 16, 8, 8, |_, c, y, x| ((c + y + x) as f32 * 0.5).cos());
    let img = BlockedImage::from_nchw(&input);

    let mut engine = Engine::builder(1).tune_policy(TunePolicy::Off).build();
    let mut layer = LayerBuilder::new(spec, &weights)
        .algorithm(AlgoChoice::Fixed(Algorithm::LoWino { m: 2 }))
        .calibration_samples(vec![img.clone()])
        .build(&engine)
        .unwrap();
    let mut out = engine.alloc_output(&spec);
    engine.execute(&mut layer, &img, &mut out).unwrap();
    assert!(out.max_abs() > 0.0);
}
