//! Integration: every algorithm's full pipeline against the scalar NCHW
//! reference convolution, over a grid of layer shapes — including ragged
//! tile edges, non-64-multiple channels, and property-based random shapes.

use lowino::prelude::*;
use lowino_conv::algo::direct_f32::reference_conv_nchw;
use lowino_testkit::{one_of, prop_assert, property};

fn synth(spec: &ConvShape, seed: u64) -> (Tensor4, Tensor4) {
    let mut s = seed | 1;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s >> 40) as f32 / (1u64 << 23) as f32 - 0.5
    };
    let input = Tensor4::from_fn(spec.batch, spec.in_c, spec.h, spec.w, |_, _, _, _| {
        next() * 2.0
    });
    let weights = Tensor4::from_fn(spec.out_c, spec.in_c, spec.r, spec.r, |_, _, _, _| {
        next() * 0.4
    });
    (input, weights)
}

fn run_algo(
    spec: ConvShape,
    algo: Algorithm,
    input: &Tensor4,
    weights: &Tensor4,
    threads: usize,
) -> Tensor4 {
    let mut engine = Engine::new(threads);
    let img = BlockedImage::from_nchw(input);
    let mut layer = LayerBuilder::new(spec, weights)
        .algorithm(AlgoChoice::Fixed(algo))
        .calibration_samples(vec![img.clone()])
        .build(&engine)
        .unwrap_or_else(|e| panic!("{algo}: {e}"));
    let mut out = engine.alloc_output(&spec);
    engine.execute(&mut layer, &img, &mut out).unwrap();
    out.to_nchw()
}

/// Scheme-appropriate relative-error budget on small synthetic layers.
fn budget(algo: Algorithm) -> f64 {
    match algo {
        Algorithm::DirectF32 => 1e-5,
        Algorithm::WinogradF32 { m } => {
            if m >= 6 {
                1e-3
            } else {
                1e-4
            }
        }
        Algorithm::DirectInt8 => 0.05,
        Algorithm::LoWino { m } => {
            // Per-tensor scales lose precision as position disparity grows.
            match m {
                2 => 0.05,
                4 => 0.30,
                _ => 2.0, // m = 6 per-tensor is known-bad; see accuracy_ordering
            }
        }
        Algorithm::UpCast { m } => {
            if m >= 4 {
                0.35
            } else {
                0.08
            }
        }
        Algorithm::DownScale { m } => {
            if m >= 4 {
                2.0 // the collapse is asserted elsewhere; here only sanity
            } else {
                0.15
            }
        }
    }
}

#[test]
fn all_algorithms_over_shape_grid() {
    let shapes = [
        ConvShape::same(1, 8, 8, 8, 3),
        ConvShape::same(2, 16, 8, 10, 3),   // batch > 1, ragged for m=4
        ConvShape::same(1, 70, 66, 9, 3),   // channels cross 64 blocks
        ConvShape::same(1, 8, 128, 7, 3),   // K multiple of 64, tiny spatial
    ];
    let algos = [
        Algorithm::DirectF32,
        Algorithm::WinogradF32 { m: 2 },
        Algorithm::WinogradF32 { m: 4 },
        Algorithm::DirectInt8,
        Algorithm::LoWino { m: 2 },
        Algorithm::LoWino { m: 4 },
        Algorithm::DownScale { m: 2 },
        Algorithm::UpCast { m: 2 },
    ];
    for (i, spec) in shapes.into_iter().enumerate() {
        let spec = spec.validate().unwrap();
        let (input, weights) = synth(&spec, 1000 + i as u64);
        let want = reference_conv_nchw(&spec, &input, &weights);
        for algo in algos {
            let got = run_algo(spec, algo, &input, &weights, 1 + i % 3);
            let err = got.rel_l2_error(&want);
            assert!(
                err < budget(algo),
                "{algo} on {spec:?}: rel error {err} > {}",
                budget(algo)
            );
        }
    }
}

#[test]
fn unpadded_convolution() {
    let spec = ConvShape {
        batch: 1,
        in_c: 8,
        out_c: 8,
        h: 10,
        w: 12,
        r: 3,
        stride: 1,
        pad: 0,
    }
    .validate()
    .unwrap();
    let (input, weights) = synth(&spec, 77);
    let want = reference_conv_nchw(&spec, &input, &weights);
    for algo in [Algorithm::WinogradF32 { m: 4 }, Algorithm::LoWino { m: 2 }] {
        let got = run_algo(spec, algo, &input, &weights, 2);
        let err = got.rel_l2_error(&want);
        assert!(err < budget(algo), "{algo}: {err}");
    }
}

#[test]
fn five_by_five_filters_winograd() {
    // F(m, 5) — generated matrices, not the canonical r = 3 set.
    let spec = ConvShape::same(1, 4, 4, 12, 5).validate().unwrap();
    let (input, weights) = synth(&spec, 31);
    let want = reference_conv_nchw(&spec, &input, &weights);
    let got = run_algo(spec, Algorithm::WinogradF32 { m: 2 }, &input, &weights, 1);
    let err = got.rel_l2_error(&want);
    assert!(err < 1e-3, "F(2,5): {err}");
}

// Random small shapes: the quantized LoWino pipeline must always stay
// within its error budget of the scalar reference.
property! {
    #[cases(12)]
    fn lowino_random_shapes(
        batch in 1usize..3,
        c in 1usize..24,
        k in 1usize..24,
        hw in 6usize..15,
        m in one_of(&[2usize, 4]),
        seed in 0u64..1000,
    ) {
        let spec = ConvShape::same(batch, c, k, hw, 3).validate().unwrap();
        let (input, weights) = synth(&spec, seed);
        let want = reference_conv_nchw(&spec, &input, &weights);
        let got = run_algo(spec, Algorithm::LoWino { m }, &input, &weights, 1);
        let err = got.rel_l2_error(&want);
        // Tiny channel counts quantize noisily; the bound is loose but
        // catches structural bugs (which produce errors ~1.0).
        prop_assert!(err < 0.5, "F({m}) on {spec:?}: {err}");
    }
}
