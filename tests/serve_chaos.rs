//! Chaos soak: a seeded request stream against a real compiled-graph
//! server while every `LOWINO_FAULT` site from the injection registry is
//! armed in turn — the serving-path translation of PR-7's resilience
//! story.
//!
//! The guarantee under test is the server's headline contract: **every
//! accepted request gets exactly one finite, correct-shape response**,
//! no matter which layer fails underneath it.
//!
//! * `scratch/grow` — armed through a whole burst. Steady-state serving
//!   never reallocates (buffers settle at compile time), so the site
//!   must still be armed afterwards and every response clean: the probe
//!   sits on the only allocation the steady state could make.
//! * `pool/phase` — a worker panics mid-phase inside the engine's
//!   fork-join pool. The pool captures it, `ResilientConv` demotes the
//!   layer down its ladder, the batch retries and completes: clients
//!   see ordinary 200s while `/stats` reports the demotion.
//! * `wisdom/save` — fires during the shard's shutdown persistence
//!   (simulated crash mid-write). Shutdown still drains cleanly; the
//!   failure is surfaced as `wisdom_errors` in the final snapshot.
//! * `shard/wedge` + `shard/spawn` — the supervision soak: shard workers
//!   are wedged mid-batch (and their respawns killed at spawn) while a
//!   concurrent request stream runs. The supervisor steals the in-flight
//!   work, replays it exactly once and respawns the worker — clients
//!   still see only finite 200s (or clean 503/504s), and the accounting
//!   identity closes exactly.
//!
//! Everything runs over in-memory duplex streams — no ports, no
//! wall-clock coupling beyond the supervisor's pacing — so the whole
//! battery is deterministic in its *outcomes*.
//!
//! The fault sites are process-global statics, so the tests serialize on
//! one mutex.

use std::io::{BufReader, Write};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

use lowino::prelude::HealthPolicy;
use lowino::Tensor4;
use lowino_nn::{mini_vgg, CompiledGraph, GraphSpec};
use lowino_serve::http::read_response;
use lowino_serve::{GraphModel, ServeConfig, Server};
use lowino_testkit::faults;
use lowino_testkit::Rng;

static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn fault_guard() -> MutexGuard<'static, ()> {
    let g = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    faults::disarm_all();
    g
}

const IN_C: usize = 3;
const HW: usize = 8;
const CLASSES: usize = 4;
const BATCH: usize = 2;

fn build_model(shard: usize, wisdom: &std::path::Path) -> GraphModel {
    let mut model = mini_vgg(IN_C, 8, CLASSES, 99 + shard as u64);
    let calib = Tensor4::from_fn(2, IN_C, HW, HW, |b, c, y, x| {
        ((b * 31 + c * 7 + y * 3 + x) as f32 * 0.37).sin()
    });
    let spec = GraphSpec { m: 2, batch: BATCH, threads: 2 };
    let graph =
        CompiledGraph::compile_with_health(&mut model, &calib, &spec, HealthPolicy::default())
            .expect("chaos graph compiles");
    GraphModel::new(graph).with_wisdom_path(wisdom.join(format!("shard{shard}.wisdom")))
}

/// Fire `n` seeded inference requests down one keep-alive connection and
/// return how many came back 200-with-finite-payload. Panics on any
/// hang-adjacent outcome: wrong shape, non-finite float, non-200 status.
fn run_burst(server: &Server, seed: u64, n: usize) -> usize {
    let (il, ol) = server.dims();
    let mut rng = Rng::seed_from_u64(seed);
    let mut conn = BufReader::new(server.connect());
    let mut ok = 0;
    for i in 0..n {
        let mut input = vec![0.0f32; il];
        rng.fill_f32(&mut input, -1.0, 1.0);
        let body: Vec<u8> = input.iter().flat_map(|v| v.to_le_bytes()).collect();
        conn.get_mut()
            .write_all(
                format!("POST /infer HTTP/1.1\r\nContent-Length: {}\r\n\r\n", body.len())
                    .as_bytes(),
            )
            .unwrap();
        conn.get_mut().write_all(&body).unwrap();
        let resp = read_response(&mut conn).unwrap_or_else(|e| {
            panic!("request {i} of seed-{seed} burst got no response: {e:?}")
        });
        assert_eq!(resp.status, 200, "request {i}: {:?}", String::from_utf8_lossy(&resp.body));
        assert_eq!(resp.body.len(), ol * 4, "request {i}: wrong payload shape");
        for (j, chunk) in resp.body.chunks_exact(4).enumerate() {
            let v = f32::from_le_bytes(chunk.try_into().unwrap());
            assert!(v.is_finite(), "request {i} logit {j} is {v}");
        }
        ok += 1;
    }
    ok
}

/// Fetch `/stats` over HTTP and return the raw JSON body.
fn fetch_stats(server: &Server) -> String {
    let mut conn = BufReader::new(server.connect());
    conn.get_mut()
        .write_all(b"GET /stats HTTP/1.1\r\nConnection: close\r\n\r\n")
        .unwrap();
    let resp = read_response(&mut conn).expect("/stats answers");
    assert_eq!(resp.status, 200);
    let body = String::from_utf8(resp.body).expect("/stats is UTF-8");
    lowino_testkit::validate_json(&body).expect("/stats is valid JSON");
    body
}

#[test]
fn chaos_battery_every_fault_site_in_turn() {
    let _g = fault_guard();
    let dir = std::env::temp_dir().join(format!("lowino-serve-chaos-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let wisdom_dir = dir.clone();
    let cfg = ServeConfig {
        shards: 1,
        max_batch: BATCH,
        max_delay_ns: 200_000,
        queue_cap: 32,
        ..ServeConfig::default()
    };
    let server =
        Server::start(cfg, move |shard| build_model(shard, &wisdom_dir)).expect("server starts");
    assert_eq!(server.dims(), (IN_C * HW * HW, CLASSES));

    // Phase 0: healthy baseline.
    let baseline = run_burst(&server, 0xA0, 6);
    assert_eq!(baseline, 6);
    assert_eq!(server.stats().demotions, 0, "baseline must not demote");

    // Phase 1: scratch/grow armed across a whole burst. Steady-state
    // serving performs no reallocation, so the site stays armed and
    // every response is clean — the probe guards the only allocation
    // the steady state could make.
    faults::arm_from_spec(faults::SCRATCH_GROW.name()).unwrap();
    assert_eq!(run_burst(&server, 0xA1, 8), 8);
    assert!(
        faults::SCRATCH_GROW.is_armed(),
        "steady-state serving reallocated scratch (hits={})",
        faults::SCRATCH_GROW.hits()
    );
    faults::SCRATCH_GROW.disarm();

    // Phase 2: pool/phase armed — a worker panics mid-phase on the next
    // conv. The ladder demotes and the stream keeps flowing: clients
    // still see only 200s.
    let pool_hits_before = faults::POOL_PHASE.hits();
    faults::arm_from_spec(faults::POOL_PHASE.name()).unwrap();
    assert_eq!(run_burst(&server, 0xA2, 8), 8);
    assert_eq!(
        faults::POOL_PHASE.hits(),
        pool_hits_before + 1,
        "armed pool fault never reached a phase probe"
    );
    // Shard stats publish after each batch; one more burst guarantees the
    // demotion is visible before we read /stats.
    assert_eq!(run_burst(&server, 0xA3, 4), 4);
    let stats = server.stats();
    assert!(stats.demotions >= 1, "pool panic did not demote: {stats:?}");
    let json = fetch_stats(&server);
    assert!(
        json.contains(&format!("\"demotions\":{}", stats.demotions)),
        "/stats does not show the demotion: {json}"
    );

    // Phase 3: wisdom/save armed at shutdown — the shard's persistence
    // crashes mid-write. Drain still completes; the error lands in the
    // final snapshot instead of taking the server down.
    faults::arm_from_spec(faults::WISDOM_SAVE.name()).unwrap();
    let snap = server.shutdown();
    let wisdom_errors: u64 = snap.per_shard.iter().map(|s| s.wisdom_errors).sum();
    assert_eq!(wisdom_errors, 1, "wisdom crash not surfaced: {snap:?}");
    assert!(!faults::WISDOM_SAVE.is_armed(), "shutdown never tried to save wisdom");

    // The headline contract, end to end: every accepted request resolved,
    // nothing panicked a connection, nothing was dropped on the floor.
    assert_eq!(
        snap.accepted,
        snap.completed + snap.failed + snap.timed_out + snap.unavailable,
        "accounting hole: {snap:?}"
    );
    assert_eq!(snap.failed, 0, "a request failed under chaos: {snap:?}");
    assert_eq!((snap.timed_out, snap.unavailable), (0, 0), "{snap:?}");
    assert_eq!(snap.conn_panics, 0);
    assert_eq!(snap.accepted, 6 + 8 + 8 + 4);
    assert!(snap.demotions >= 1);

    faults::disarm_all();
    std::fs::remove_dir_all(&dir).ok();
}

/// The supervision soak: wedge shard workers mid-batch (and kill one
/// respawn at spawn) under a concurrent request stream, with a mid-batch
/// `pool/phase` panic thrown in. Every request must resolve — finite
/// 200, or a clean 503/504 — the supervisor must restart the shard
/// within its configured budget, and the books must close exactly.
#[test]
fn shard_kill_and_wedge_mid_stream_soak() {
    let _g = fault_guard();
    let dir = std::env::temp_dir().join(format!("lowino-serve-soak-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let wisdom_dir = dir.clone();
    let cfg = ServeConfig {
        shards: 2,
        max_batch: BATCH,
        max_delay_ns: 200_000,
        queue_cap: 64,
        wedge_timeout_ns: 25_000_000, // 25 ms wall: ≫ heartbeat, ≪ test budget
        restart_backoff_ns: 1_000_000,
        max_restarts: 20,
        ..ServeConfig::default()
    };
    let server =
        Server::start(cfg, move |shard| build_model(shard, &wisdom_dir)).expect("server starts");

    // Run `clients` concurrent connections, each firing `per_client`
    // sequential requests; every response must be a finite 200 or a
    // clean 503/504. Returns (oks, sheds).
    let soak = |seed: u64, clients: usize, per_client: usize| -> (usize, usize) {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let conn = server.connect();
                let (il, ol) = server.dims();
                std::thread::spawn(move || {
                    let mut rng = Rng::seed_from_u64(seed + c as u64);
                    let mut conn = BufReader::new(conn);
                    let (mut oks, mut sheds) = (0usize, 0usize);
                    for i in 0..per_client {
                        let mut input = vec![0.0f32; il];
                        rng.fill_f32(&mut input, -1.0, 1.0);
                        let body: Vec<u8> =
                            input.iter().flat_map(|v| v.to_le_bytes()).collect();
                        conn.get_mut()
                            .write_all(
                                format!(
                                    "POST /infer HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                                    body.len()
                                )
                                .as_bytes(),
                            )
                            .unwrap();
                        conn.get_mut().write_all(&body).unwrap();
                        let resp = read_response(&mut conn).unwrap_or_else(|e| {
                            panic!("client {c} request {i} got no response: {e:?}")
                        });
                        match resp.status {
                            200 => {
                                assert_eq!(resp.body.len(), ol * 4, "client {c} req {i}");
                                for chunk in resp.body.chunks_exact(4) {
                                    let v = f32::from_le_bytes(chunk.try_into().unwrap());
                                    assert!(v.is_finite(), "client {c} req {i}: {v}");
                                }
                                oks += 1;
                            }
                            503 | 504 => sheds += 1,
                            s => panic!(
                                "client {c} req {i}: dirty status {s}: {:?}",
                                String::from_utf8_lossy(&resp.body)
                            ),
                        }
                    }
                    (oks, sheds)
                })
            })
            .collect();
        let mut totals = (0, 0);
        for h in handles {
            let (o, s) = h.join().expect("soak client panicked");
            totals.0 += o;
            totals.1 += s;
        }
        totals
    };

    // Round 1: wedge a worker mid-batch. The stolen batch replays on a
    // survivor (or the respawn), so nothing is lost.
    let wedges = faults::SHARD_WEDGE.hits();
    faults::SHARD_WEDGE.arm();
    let (oks, _) = soak(0xB1, 6, 5);
    assert!(oks >= 1);
    assert!(faults::SHARD_WEDGE.hits() > wedges, "the wedge fault never fired");

    // The supervisor must notice and respawn within its budget.
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.stats().per_shard.iter().all(|s| s.restarts == 0) {
        assert!(Instant::now() < deadline, "no restart after a wedge: {:?}", server.stats());
        std::thread::sleep(Duration::from_millis(2));
    }

    // Round 2: the next respawn dies at spawn (shard/spawn) — arm a
    // wedge to bring a worker down first, and let the backoff ladder
    // absorb the spawn death on the way back up.
    faults::SHARD_SPAWN.arm();
    faults::SHARD_WEDGE.arm();
    let (oks, _) = soak(0xB2, 6, 5);
    assert!(oks >= 1, "round 2: {:?} / events {:?}", server.stats(), server.supervisor_events());

    // Round 3: a mid-batch engine panic (pool/phase) on top — the
    // resilience ladder demotes and the stream keeps flowing.
    faults::arm_from_spec(faults::POOL_PHASE.name()).unwrap();
    let (oks, sheds) = soak(0xB3, 6, 5);
    assert_eq!(oks + sheds, 30, "round 3 lost a request");
    assert!(oks >= 1);

    // Let any in-flight respawn settle so shutdown sees live shards.
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.stats().per_shard.iter().any(|s| !s.alive) && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }

    faults::disarm_all();
    let snap = server.shutdown();
    // The headline invariant under shard murder: exactly-once resolution
    // for every accepted request, books closed, no connection panics.
    assert_eq!(
        snap.accepted,
        snap.completed + snap.failed + snap.timed_out + snap.unavailable,
        "accounting hole: {snap:?}"
    );
    assert_eq!(snap.failed, 0, "a request died dirty under the soak: {snap:?}");
    assert_eq!(snap.conn_panics, 0);
    let restarts: u64 = snap.per_shard.iter().map(|s| s.restarts).sum();
    assert!(restarts >= 1, "the supervisor never restarted anything: {snap:?}");
    std::fs::remove_dir_all(&dir).ok();
}
