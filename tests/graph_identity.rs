//! Differential battery: the whole-model graph engine
//! ([`lowino_nn::CompiledGraph`]) must be **bitwise identical** to the
//! per-layer PTQ path ([`lowino_nn::QuantizedModel`]) — for MiniResNet
//! and MiniVGG, at thread counts 1 and 4, on whatever SIMD tier the
//! process runs under (`ci/check.sh` re-runs this binary with
//! `LOWINO_FORCE_TIER` pinned to every tier the host supports).
//!
//! This is the strongest correctness statement the graph engine makes:
//! folding bias/ReLU/residual-add into the conv tape epilogues, replacing
//! per-layer allocations with liveness-planned arena windows, and
//! re-blocking the glue ops must change **no bit** of the logits. The
//! per-element arithmetic order is a contract, not an accident.

use lowino::Tensor4;
use lowino::Algorithm;
use lowino_nn::{
    mini_resnet, mini_vgg, CompiledGraph, GraphSpec, Layer, Model, QuantizedModel,
    QuantizedSpec,
};
use lowino_testkit::Rng;

/// Give every conv/linear a non-trivial bias (fresh layers initialise
/// biases to zero, which would let a broken bias epilogue pass).
fn inject_biases(layers: &mut [Layer], rng: &mut Rng) {
    for l in layers {
        match l {
            Layer::Conv(c) => {
                for b in &mut c.bias {
                    *b = rng.f32_range(-0.3, 0.3);
                }
            }
            Layer::Linear(lin) => {
                for b in &mut lin.bias {
                    *b = rng.f32_range(-0.3, 0.3);
                }
            }
            Layer::Residual(r) => inject_biases(&mut r.body, rng),
            _ => {}
        }
    }
}

fn build_model(resnet: bool, seed: u64) -> Model {
    let mut model = if resnet {
        mini_resnet(3, 8, 3, seed)
    } else {
        mini_vgg(3, 8, 3, seed)
    };
    inject_biases(&mut model.layers, &mut Rng::seed_from_u64(seed ^ 0xB1A5));
    model
}

fn batch(n: usize, seed: u64) -> Tensor4 {
    let mut rng = Rng::seed_from_u64(seed);
    let mut t = Tensor4::zeros(n, 3, 8, 8);
    rng.fill_f32(t.data_mut(), -1.5, 1.5);
    t
}

fn bits(t: &Tensor4) -> Vec<u32> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

/// One (model, m, threads) cell: logits from the graph engine vs the
/// per-layer interpreter, compared bit for bit.
fn check_identity(resnet: bool, m: usize, threads: usize) {
    let calib = batch(4, 0xCA11B ^ m as u64);
    let x = batch(2, 0x1D ^ threads as u64);

    let mut model = build_model(resnet, 31);
    let mut q = QuantizedModel::from_model(
        &mut model,
        &calib,
        &QuantizedSpec {
            algorithm: Algorithm::LoWino { m },
            per_position: false,
            batch: 2,
            threads,
        },
    )
    .unwrap();
    let want = q.logits(&x);

    // Fresh identically-seeded model: compilation mutates layer caches.
    let mut model = build_model(resnet, 31);
    let spec = GraphSpec { m, batch: 2, threads };
    let mut g = CompiledGraph::compile(&mut model, &calib, &spec).unwrap();
    let got = g.logits(&x);

    assert_eq!(g.demotion_count(), 0, "healthy model must not demote");
    assert!(!g.plan_degraded());
    assert_eq!(
        bits(&got),
        bits(&want),
        "graph logits differ from per-layer path \
         (resnet={resnet} m={m} threads={threads}):\n {got:?}\n vs {want:?}",
    );
}

#[test]
fn miniresnet_graph_matches_per_layer_bitwise_1_thread() {
    check_identity(true, 2, 1);
}

#[test]
fn miniresnet_graph_matches_per_layer_bitwise_4_threads() {
    check_identity(true, 2, 4);
}

#[test]
fn minivgg_graph_matches_per_layer_bitwise_1_thread() {
    check_identity(false, 2, 1);
}

#[test]
fn minivgg_graph_matches_per_layer_bitwise_4_threads() {
    check_identity(false, 2, 4);
}

#[test]
fn f4_tile_also_matches_bitwise() {
    // The F(4,3) tapes take a different codelet path than F(2,3); the
    // identity must hold there too.
    check_identity(true, 4, 2);
    check_identity(false, 4, 2);
}

#[test]
fn thread_count_does_not_change_graph_output() {
    // The work partition is static and each output element is computed by
    // exactly one task, so the logits are thread-count-invariant.
    let calib = batch(4, 7);
    let x = batch(2, 9);
    let mut logits = Vec::new();
    for threads in [1, 4] {
        let mut model = build_model(true, 13);
        let spec = GraphSpec { m: 2, batch: 2, threads };
        let mut g = CompiledGraph::compile(&mut model, &calib, &spec).unwrap();
        logits.push(bits(&g.logits(&x)));
    }
    assert_eq!(logits[0], logits[1], "graph output varies with threads");
}
