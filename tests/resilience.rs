//! End-to-end resilience: each injectable fault site, armed in turn, must
//! leave [`ResilientConv`] serving finite output within direct-f32
//! tolerance — and reporting which (demoted) algorithm served it.
//!
//! The fault sites are process-global, so every test here takes
//! `FAULT_LOCK`: an armed site is then always consumed by the test that
//! armed it, never by a concurrently-running pool job from another test.

use std::sync::Mutex;

use lowino::prelude::*;
use lowino::resilient::DemotionReason;
use lowino::{ConvContext, DirectF32Conv, ResilientConv};
use lowino_nn::{mini_resnet, CompiledGraph, GraphSpec};
use lowino_testkit::faults::{self, CALIBRATE_SAMPLES, GRAPH_PLAN, POOL_PHASE, SCRATCH_GROW};

static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn setup() -> (ConvShape, Tensor4, BlockedImage) {
    let spec = ConvShape::same(1, 8, 8, 10, 3).validate().unwrap();
    let w = Tensor4::from_fn(8, 8, 3, 3, |k, c, y, x| {
        ((k + c + y + x) as f32 * 0.3).sin() * 0.2
    });
    let input = Tensor4::from_fn(1, 8, 10, 10, |_, c, y, x| {
        ((c * 5 + y * 3 + x) as f32 * 0.17).cos()
    });
    (spec, w, BlockedImage::from_nchw(&input))
}

/// Direct-f32 reference output for the layer.
fn reference(spec: ConvShape, w: &Tensor4, img: &BlockedImage) -> BlockedImage {
    let mut conv = DirectF32Conv::new(spec, w).unwrap();
    let mut ctx = ConvContext::new(1);
    let mut out = BlockedImage::zeros(spec.batch, spec.out_c, spec.out_h(), spec.out_w());
    conv.execute(img, &mut out, &mut ctx).unwrap();
    out
}

/// Quantized-rung tolerance against the direct-f32 reference: loose
/// enough for INT8 on a toy 8-channel layer, tight enough to catch a
/// wrong or garbage output.
const TOL: f64 = 0.30;

#[test]
fn pool_phase_fault_demotes_and_serves_within_tolerance() {
    let _guard = FAULT_LOCK.lock().unwrap();
    faults::disarm_all();
    let (spec, w, img) = setup();
    let want = reference(spec, &w, &img);
    let mut conv = ResilientConv::new(spec, 4, &w, vec![img.clone()]).unwrap();
    assert_eq!(conv.algorithm(), Algorithm::LoWino { m: 4 });
    let mut ctx = ConvContext::new(2);
    let mut out = BlockedImage::zeros(1, 8, 10, 10);

    POOL_PHASE.arm();
    conv.execute(&img, &mut out, &mut ctx).unwrap();
    assert!(!POOL_PHASE.is_armed(), "fault is one-shot");
    assert_eq!(
        conv.algorithm(),
        Algorithm::UpCast { m: 4 },
        "the worker panic must demote LoWino one rung"
    );
    assert_eq!(conv.demotions().len(), 1);
    assert!(matches!(
        conv.demotions()[0].reason,
        DemotionReason::ExecFailed(ExecError::WorkerPanic { .. })
    ));
    assert!(out.to_nchw().data().iter().all(|v| v.is_finite()));
    let err = out.to_nchw().rel_l2_error(&want.to_nchw());
    assert!(err < TOL, "rel error {err}");
}

#[test]
fn scratch_grow_fault_demotes_and_serves_within_tolerance() {
    let _guard = FAULT_LOCK.lock().unwrap();
    faults::disarm_all();
    let (spec, w, img) = setup();
    let want = reference(spec, &w, &img);
    let mut conv = ResilientConv::new(spec, 4, &w, vec![img.clone()]).unwrap();
    // Fresh context: the first execute must grow the scratch arena, which
    // is where the armed fault panics.
    let mut ctx = ConvContext::new(2);
    let mut out = BlockedImage::zeros(1, 8, 10, 10);

    SCRATCH_GROW.arm();
    conv.execute(&img, &mut out, &mut ctx).unwrap();
    assert!(!SCRATCH_GROW.is_armed(), "fault is one-shot");
    assert_eq!(conv.algorithm(), Algorithm::UpCast { m: 4 });
    assert!(matches!(
        conv.demotions()[0].reason,
        DemotionReason::ExecFailed(ExecError::WorkerPanic { .. })
    ));
    assert!(out.to_nchw().data().iter().all(|v| v.is_finite()));
    let err = out.to_nchw().rel_l2_error(&want.to_nchw());
    assert!(err < TOL, "rel error {err}");
}

#[test]
fn calibrate_fault_demotes_at_construction_and_serves() {
    let _guard = FAULT_LOCK.lock().unwrap();
    faults::disarm_all();
    let (spec, w, img) = setup();
    let want = reference(spec, &w, &img);

    // LoWino's Winograd-domain calibration consumes the armed fault, so
    // construction demotes; up-cast's spatial calibration then succeeds.
    CALIBRATE_SAMPLES.arm();
    let mut conv = ResilientConv::new(spec, 4, &w, vec![img.clone()]).unwrap();
    assert!(!CALIBRATE_SAMPLES.is_armed(), "fault is one-shot");
    assert_eq!(conv.algorithm(), Algorithm::UpCast { m: 4 });
    assert_eq!(conv.demotions().len(), 1);
    assert!(matches!(
        conv.demotions()[0].reason,
        DemotionReason::BuildFailed(ConvError::Calibration(_))
    ));

    let mut ctx = ConvContext::new(2);
    let mut out = BlockedImage::zeros(1, 8, 10, 10);
    conv.execute(&img, &mut out, &mut ctx).unwrap();
    assert!(out.to_nchw().data().iter().all(|v| v.is_finite()));
    let err = out.to_nchw().rel_l2_error(&want.to_nchw());
    assert!(err < TOL, "rel error {err}");
}

#[test]
fn wisdom_save_fault_leaves_engine_serving() {
    let _guard = FAULT_LOCK.lock().unwrap();
    faults::disarm_all();
    let (spec, w, img) = setup();
    let want = reference(spec, &w, &img);

    // A failed wisdom save is an I/O error, not an execution failure: the
    // in-memory wisdom keeps serving and the layer still executes.
    let dir = std::env::temp_dir().join("lowino_resilience_wisdom_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("wisdom.txt");
    let mut ctx = ConvContext::new(1);
    faults::WISDOM_SAVE.arm();
    let err = ctx.wisdom.save(&path).unwrap_err();
    assert!(err.contains("injected fault: wisdom/save"), "{err}");
    assert!(!faults::WISDOM_SAVE.is_armed(), "fault is one-shot");

    let mut conv = ResilientConv::new(spec, 4, &w, vec![img.clone()]).unwrap();
    let mut out = BlockedImage::zeros(1, 8, 10, 10);
    conv.execute(&img, &mut out, &mut ctx).unwrap();
    assert_eq!(conv.algorithm(), Algorithm::LoWino { m: 4 });
    let err = out.to_nchw().rel_l2_error(&want.to_nchw());
    assert!(err < TOL, "rel error {err}");
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Whole-model graph engine under fault injection
// ---------------------------------------------------------------------------

fn graph_input(batch: usize, seed: u64) -> Tensor4 {
    let mut rng = lowino_testkit::Rng::seed_from_u64(seed);
    let mut t = Tensor4::zeros(batch, 3, 8, 8);
    rng.fill_f32(t.data_mut(), -1.0, 1.0);
    t
}

#[test]
fn graph_plan_fault_degrades_plan_but_not_output() {
    let _guard = FAULT_LOCK.lock().unwrap();
    faults::disarm_all();
    let x = graph_input(2, 41);
    let spec = GraphSpec { m: 2, batch: 2, threads: 2 };

    // Healthy compile for the reference logits.
    let mut model = mini_resnet(3, 8, 3, 41);
    let mut healthy = CompiledGraph::compile(&mut model, &x, &spec).unwrap();
    assert!(!healthy.plan_degraded());
    let want = healthy.logits(&x);

    // Armed GRAPH_PLAN: the planner falls back to the disjoint layout.
    // The arena gets bigger, but slot contents — and therefore the
    // logits — must be bitwise unchanged.
    GRAPH_PLAN.arm();
    let mut model = mini_resnet(3, 8, 3, 41);
    let mut degraded = CompiledGraph::compile(&mut model, &x, &spec).unwrap();
    assert!(!GRAPH_PLAN.is_armed(), "fault is one-shot");
    assert!(degraded.plan_degraded(), "armed fault must degrade the plan");
    assert!(
        degraded.plan_bytes() >= healthy.plan_bytes(),
        "disjoint fallback cannot be smaller than the packed plan"
    );
    let got = degraded.logits(&x);
    let same = want
        .data()
        .iter()
        .zip(got.data())
        .all(|(a, b)| a.to_bits() == b.to_bits());
    assert!(same, "degraded plan changed the logits");
}

#[test]
fn calibrate_fault_during_graph_compile_demotes_one_conv() {
    let _guard = FAULT_LOCK.lock().unwrap();
    faults::disarm_all();
    let x = graph_input(2, 43);
    let spec = GraphSpec { m: 2, batch: 2, threads: 2 };

    // The armed fault fires inside the first conv's Winograd-domain
    // calibration; ResilientConv demotes that rung at build time and the
    // rest of the model compiles on the healthy path.
    CALIBRATE_SAMPLES.arm();
    let mut model = mini_resnet(3, 8, 3, 43);
    let mut g = CompiledGraph::compile(&mut model, &x, &spec).unwrap();
    assert!(!CALIBRATE_SAMPLES.is_armed(), "fault is one-shot");
    assert!(
        g.demotion_count() >= 1,
        "compile-time calibration fault must be recorded as a demotion"
    );
    let logits = g.logits(&x);
    assert!(logits.data().iter().all(|v| v.is_finite()));
}

#[test]
fn pool_phase_fault_mid_model_demotes_and_finishes() {
    let _guard = FAULT_LOCK.lock().unwrap();
    faults::disarm_all();
    let x = graph_input(2, 47);
    let spec = GraphSpec { m: 2, batch: 2, threads: 2 };
    let mut model = mini_resnet(3, 8, 3, 47);
    let mut g = CompiledGraph::compile(&mut model, &x, &spec).unwrap();
    // Warm-up: all executors healthy.
    let mut logits = Tensor4::zeros(2, 3, 1, 1);
    g.execute(&x, &mut logits).unwrap();
    assert_eq!(g.demotion_count(), 0);

    // A worker panic mid-model must be absorbed by that conv's demotion
    // ladder; the rest of the graph keeps running and the output stays
    // finite.
    POOL_PHASE.arm();
    g.execute(&x, &mut logits).unwrap();
    assert!(!POOL_PHASE.is_armed(), "fault is one-shot");
    assert_eq!(g.demotion_count(), 1, "exactly one conv demotes");
    assert!(logits.data().iter().all(|v| v.is_finite()));

    // And the demoted graph keeps serving finite output afterwards.
    g.execute(&x, &mut logits).unwrap();
    assert!(logits.data().iter().all(|v| v.is_finite()));
}
