//! End-to-end resilience: each injectable fault site, armed in turn, must
//! leave [`ResilientConv`] serving finite output within direct-f32
//! tolerance — and reporting which (demoted) algorithm served it.
//!
//! The fault sites are process-global, so every test here takes
//! `FAULT_LOCK`: an armed site is then always consumed by the test that
//! armed it, never by a concurrently-running pool job from another test.

use std::sync::Mutex;

use lowino::prelude::*;
use lowino::resilient::DemotionReason;
use lowino::{ConvContext, DirectF32Conv, ResilientConv};
use lowino_testkit::faults::{self, CALIBRATE_SAMPLES, POOL_PHASE, SCRATCH_GROW};

static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn setup() -> (ConvShape, Tensor4, BlockedImage) {
    let spec = ConvShape::same(1, 8, 8, 10, 3).validate().unwrap();
    let w = Tensor4::from_fn(8, 8, 3, 3, |k, c, y, x| {
        ((k + c + y + x) as f32 * 0.3).sin() * 0.2
    });
    let input = Tensor4::from_fn(1, 8, 10, 10, |_, c, y, x| {
        ((c * 5 + y * 3 + x) as f32 * 0.17).cos()
    });
    (spec, w, BlockedImage::from_nchw(&input))
}

/// Direct-f32 reference output for the layer.
fn reference(spec: ConvShape, w: &Tensor4, img: &BlockedImage) -> BlockedImage {
    let mut conv = DirectF32Conv::new(spec, w).unwrap();
    let mut ctx = ConvContext::new(1);
    let mut out = BlockedImage::zeros(spec.batch, spec.out_c, spec.out_h(), spec.out_w());
    conv.execute(img, &mut out, &mut ctx).unwrap();
    out
}

/// Quantized-rung tolerance against the direct-f32 reference: loose
/// enough for INT8 on a toy 8-channel layer, tight enough to catch a
/// wrong or garbage output.
const TOL: f64 = 0.30;

#[test]
fn pool_phase_fault_demotes_and_serves_within_tolerance() {
    let _guard = FAULT_LOCK.lock().unwrap();
    faults::disarm_all();
    let (spec, w, img) = setup();
    let want = reference(spec, &w, &img);
    let mut conv = ResilientConv::new(spec, 4, &w, vec![img.clone()]).unwrap();
    assert_eq!(conv.algorithm(), Algorithm::LoWino { m: 4 });
    let mut ctx = ConvContext::new(2);
    let mut out = BlockedImage::zeros(1, 8, 10, 10);

    POOL_PHASE.arm();
    conv.execute(&img, &mut out, &mut ctx).unwrap();
    assert!(!POOL_PHASE.is_armed(), "fault is one-shot");
    assert_eq!(
        conv.algorithm(),
        Algorithm::UpCast { m: 4 },
        "the worker panic must demote LoWino one rung"
    );
    assert_eq!(conv.demotions().len(), 1);
    assert!(matches!(
        conv.demotions()[0].reason,
        DemotionReason::ExecFailed(ExecError::WorkerPanic { .. })
    ));
    assert!(out.to_nchw().data().iter().all(|v| v.is_finite()));
    let err = out.to_nchw().rel_l2_error(&want.to_nchw());
    assert!(err < TOL, "rel error {err}");
}

#[test]
fn scratch_grow_fault_demotes_and_serves_within_tolerance() {
    let _guard = FAULT_LOCK.lock().unwrap();
    faults::disarm_all();
    let (spec, w, img) = setup();
    let want = reference(spec, &w, &img);
    let mut conv = ResilientConv::new(spec, 4, &w, vec![img.clone()]).unwrap();
    // Fresh context: the first execute must grow the scratch arena, which
    // is where the armed fault panics.
    let mut ctx = ConvContext::new(2);
    let mut out = BlockedImage::zeros(1, 8, 10, 10);

    SCRATCH_GROW.arm();
    conv.execute(&img, &mut out, &mut ctx).unwrap();
    assert!(!SCRATCH_GROW.is_armed(), "fault is one-shot");
    assert_eq!(conv.algorithm(), Algorithm::UpCast { m: 4 });
    assert!(matches!(
        conv.demotions()[0].reason,
        DemotionReason::ExecFailed(ExecError::WorkerPanic { .. })
    ));
    assert!(out.to_nchw().data().iter().all(|v| v.is_finite()));
    let err = out.to_nchw().rel_l2_error(&want.to_nchw());
    assert!(err < TOL, "rel error {err}");
}

#[test]
fn calibrate_fault_demotes_at_construction_and_serves() {
    let _guard = FAULT_LOCK.lock().unwrap();
    faults::disarm_all();
    let (spec, w, img) = setup();
    let want = reference(spec, &w, &img);

    // LoWino's Winograd-domain calibration consumes the armed fault, so
    // construction demotes; up-cast's spatial calibration then succeeds.
    CALIBRATE_SAMPLES.arm();
    let mut conv = ResilientConv::new(spec, 4, &w, vec![img.clone()]).unwrap();
    assert!(!CALIBRATE_SAMPLES.is_armed(), "fault is one-shot");
    assert_eq!(conv.algorithm(), Algorithm::UpCast { m: 4 });
    assert_eq!(conv.demotions().len(), 1);
    assert!(matches!(
        conv.demotions()[0].reason,
        DemotionReason::BuildFailed(ConvError::Calibration(_))
    ));

    let mut ctx = ConvContext::new(2);
    let mut out = BlockedImage::zeros(1, 8, 10, 10);
    conv.execute(&img, &mut out, &mut ctx).unwrap();
    assert!(out.to_nchw().data().iter().all(|v| v.is_finite()));
    let err = out.to_nchw().rel_l2_error(&want.to_nchw());
    assert!(err < TOL, "rel error {err}");
}

#[test]
fn wisdom_save_fault_leaves_engine_serving() {
    let _guard = FAULT_LOCK.lock().unwrap();
    faults::disarm_all();
    let (spec, w, img) = setup();
    let want = reference(spec, &w, &img);

    // A failed wisdom save is an I/O error, not an execution failure: the
    // in-memory wisdom keeps serving and the layer still executes.
    let dir = std::env::temp_dir().join("lowino_resilience_wisdom_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("wisdom.txt");
    let mut ctx = ConvContext::new(1);
    faults::WISDOM_SAVE.arm();
    let err = ctx.wisdom.save(&path).unwrap_err();
    assert!(err.contains("injected fault: wisdom/save"), "{err}");
    assert!(!faults::WISDOM_SAVE.is_armed(), "fault is one-shot");

    let mut conv = ResilientConv::new(spec, 4, &w, vec![img.clone()]).unwrap();
    let mut out = BlockedImage::zeros(1, 8, 10, 10);
    conv.execute(&img, &mut out, &mut ctx).unwrap();
    assert_eq!(conv.algorithm(), Algorithm::LoWino { m: 4 });
    let err = out.to_nchw().rel_l2_error(&want.to_nchw());
    assert!(err < TOL, "rel error {err}");
    std::fs::remove_dir_all(&dir).ok();
}
