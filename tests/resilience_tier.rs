//! The `tier/detect` fault site, exercised end-to-end.
//!
//! This lives in its own integration binary with a single test: the fault
//! must be armed before *any* `SimdTier::detect()` call in the process, so
//! the degraded Scalar result is what gets cached — sharing a binary with
//! other tests would race the cache.

use lowino::prelude::*;
use lowino::{ConvContext, DirectF32Conv, ResilientConv, SimdTier};
use lowino_testkit::faults::TIER_DETECT;

#[test]
fn tier_detect_fault_degrades_to_scalar_and_still_serves() {
    // Arm before the first detect: the failed feature probe degrades the
    // cached tier to Scalar — always executable, bit-identical results.
    TIER_DETECT.arm();
    let mut ctx = ConvContext::new(2);
    assert_eq!(ctx.tier, SimdTier::Scalar, "failed probe must degrade to scalar");
    assert!(!TIER_DETECT.is_armed(), "fault is one-shot");

    let spec = ConvShape::same(1, 8, 8, 10, 3).validate().unwrap();
    let w = Tensor4::from_fn(8, 8, 3, 3, |k, c, y, x| {
        ((k + c + y + x) as f32 * 0.3).sin() * 0.2
    });
    let input = Tensor4::from_fn(1, 8, 10, 10, |_, c, y, x| {
        ((c * 5 + y * 3 + x) as f32 * 0.17).cos()
    });
    let img = BlockedImage::from_nchw(&input);

    let mut reference = DirectF32Conv::new(spec, &w).unwrap();
    let mut want = BlockedImage::zeros(1, 8, 10, 10);
    reference.execute(&img, &mut want, &mut ctx).unwrap();

    // No demotion: the scalar tier runs every algorithm correctly, so
    // LoWino itself keeps serving.
    let mut conv = ResilientConv::new(spec, 4, &w, vec![img.clone()]).unwrap();
    let mut out = BlockedImage::zeros(1, 8, 10, 10);
    conv.execute(&img, &mut out, &mut ctx).unwrap();
    assert_eq!(conv.algorithm(), Algorithm::LoWino { m: 4 });
    assert!(conv.demotions().is_empty());
    let err = out.to_nchw().rel_l2_error(&want.to_nchw());
    assert!(err < 0.30, "rel error {err}");
}
