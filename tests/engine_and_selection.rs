//! Integration: engine/builder workflows, the §7 auto-selector, wisdom
//! integration, SIMD-tier pinning, and static-scheduling determinism.

use lowino::prelude::*;
use lowino::{estimate_cost, Blocking, GemmShape, SimdTier};

fn setup(spec: &ConvShape) -> (Tensor4, Tensor4, BlockedImage) {
    // Post-ReLU-like (non-negative) activations: zero-mean oscillations
    // against near-orthogonal weights would cancel to a near-zero output
    // and make *relative* error metrics meaningless.
    let input = Tensor4::from_fn(spec.batch, spec.in_c, spec.h, spec.w, |b, c, y, x| {
        (((b * 41 + c * 13 + y * 5 + x) as f32 * 0.27).sin() * 0.8 + 0.6).max(0.0)
    });
    // Weights with a non-zero channel-mean so the layer output doesn't
    // cancel to ~0 (same rationale as the input offset above).
    let weights = Tensor4::from_fn(spec.out_c, spec.in_c, spec.r, spec.r, |k, c, y, x| {
        ((k * 7 + c * 3 + y + x) as f32 * 0.61).cos() * 0.1 + 0.04
    });
    let img = BlockedImage::from_nchw(&input);
    (input, weights, img)
}

#[test]
fn auto_selection_picks_winograd_for_compute_heavy() {
    // A VGG-ish compute-heavy layer: the selector should pick a Winograd
    // algorithm (both the model and the paper agree direct loses here).
    let spec = ConvShape::same(2, 256, 256, 24, 3).validate().unwrap();
    let algo = select_algorithm(&spec);
    assert!(matches!(algo, Algorithm::LoWino { .. }), "{algo}");
    // And the cost model ranks it strictly better than direct.
    let direct = estimate_cost(&spec, Algorithm::DirectInt8).unwrap();
    let chosen = estimate_cost(&spec, algo).unwrap();
    assert!(chosen < direct);
}

#[test]
fn auto_built_layer_runs_correctly() {
    let spec = ConvShape::same(1, 64, 64, 12, 3).validate().unwrap();
    let (_, weights, img) = setup(&spec);
    let mut engine = Engine::new(2);
    let mut auto_layer = LayerBuilder::new(spec, &weights)
        .calibration_samples(vec![img.clone()])
        .build(&engine)
        .unwrap();
    let mut ref_layer = LayerBuilder::new(spec, &weights)
        .algorithm(AlgoChoice::Fixed(Algorithm::DirectF32))
        .build(&engine)
        .unwrap();
    let mut out = engine.alloc_output(&spec);
    let mut out_ref = engine.alloc_output(&spec);
    engine.execute(&mut auto_layer, &img, &mut out).unwrap();
    engine.execute(&mut ref_layer, &img, &mut out_ref).unwrap();
    let err = out.to_nchw().rel_l2_error(&out_ref.to_nchw());
    assert!(err < 0.1, "auto-selected {} err {err}", auto_layer.algorithm());
}

#[test]
fn wisdom_blocking_is_consumed_by_the_engine() {
    let spec = ConvShape::same(1, 64, 64, 8, 3).validate().unwrap();
    let (_, weights, img) = setup(&spec);
    let mut engine = Engine::new(1);

    // Plant a deliberately tiny-but-valid blocking in the wisdom for this
    // layer's GEMM shape; execution must still be exact.
    let geom = spec.tiles(2).unwrap();
    let gemm_shape = GemmShape {
        t: geom.t(),
        n: geom.total,
        c: spec.in_c,
        k: spec.out_c,
    };
    let tier = engine.context().tier;
    engine.context_mut().wisdom.insert(
        tier,
        &gemm_shape,
        Blocking {
            n_blk: 3,
            c_blk: 8,
            k_blk: 64,
            row_blk: 1,
            col_blk: 1,
        },
    );

    let mut layer = LayerBuilder::new(spec, &weights)
        .algorithm(AlgoChoice::Fixed(Algorithm::LoWino { m: 2 }))
        .calibration_samples(vec![img.clone()])
        .build(&engine)
        .unwrap();
    let mut out_wisdom = engine.alloc_output(&spec);
    engine.execute(&mut layer, &img, &mut out_wisdom).unwrap();

    let mut engine2 = Engine::new(1);
    let mut layer2 = LayerBuilder::new(spec, &weights)
        .algorithm(AlgoChoice::Fixed(Algorithm::LoWino { m: 2 }))
        .calibration_samples(vec![img.clone()])
        .build(&engine2)
        .unwrap();
    let mut out_default = engine2.alloc_output(&spec);
    engine2.execute(&mut layer2, &img, &mut out_default).unwrap();

    // Blocking changes scheduling, never results.
    assert_eq!(
        out_wisdom.to_nchw().max_abs_diff(&out_default.to_nchw()),
        0.0
    );
}

#[test]
fn all_simd_tiers_produce_identical_quantized_results() {
    let spec = ConvShape::same(1, 16, 16, 8, 3).validate().unwrap();
    let (_, weights, img) = setup(&spec);
    let mut outputs = Vec::new();
    for tier in SimdTier::available() {
        let mut engine = Engine::with_tier(1, tier);
        let mut layer = LayerBuilder::new(spec, &weights)
            .algorithm(AlgoChoice::Fixed(Algorithm::LoWino { m: 4 }))
            .calibration_samples(vec![img.clone()])
            .build(&engine)
            .unwrap();
        let mut out = engine.alloc_output(&spec);
        engine.execute(&mut layer, &img, &mut out).unwrap();
        outputs.push(out.to_nchw());
    }
    for pair in outputs.windows(2) {
        // The INT8 pipeline is bit-deterministic across tiers (the GEMM is
        // exact integer; transforms and dequant run identical f32 code).
        assert_eq!(pair[0].max_abs_diff(&pair[1]), 0.0);
    }
}

#[test]
fn thread_count_does_not_change_results() {
    let spec = ConvShape::same(2, 32, 32, 10, 3).validate().unwrap();
    let (_, weights, img) = setup(&spec);
    let mut outputs = Vec::new();
    for threads in [1usize, 2, 5] {
        let mut engine = Engine::new(threads);
        let mut layer = LayerBuilder::new(spec, &weights)
            .algorithm(AlgoChoice::Fixed(Algorithm::LoWino { m: 4 }))
            .calibration_samples(vec![img.clone()])
            .build(&engine)
            .unwrap();
        let mut out = engine.alloc_output(&spec);
        engine.execute(&mut layer, &img, &mut out).unwrap();
        outputs.push(out.to_nchw());
    }
    for pair in outputs.windows(2) {
        assert_eq!(pair[0].max_abs_diff(&pair[1]), 0.0);
    }
}

#[test]
fn stage_timings_are_reported_per_stage() {
    let spec = ConvShape::same(1, 64, 64, 16, 3).validate().unwrap();
    let (_, weights, img) = setup(&spec);
    let mut engine = Engine::new(1);
    let mut layer = LayerBuilder::new(spec, &weights)
        .algorithm(AlgoChoice::Fixed(Algorithm::LoWino { m: 2 }))
        .calibration_samples(vec![img.clone()])
        .build(&engine)
        .unwrap();
    let mut out = engine.alloc_output(&spec);
    let t = engine.execute(&mut layer, &img, &mut out).unwrap();
    assert!(t.input_transform > std::time::Duration::ZERO);
    assert!(t.gemm > std::time::Duration::ZERO);
    assert!(t.output_transform > std::time::Duration::ZERO);
    assert_eq!(
        t.total(),
        t.input_transform + t.gemm + t.output_transform
    );
}

#[test]
fn builder_error_paths() {
    let spec = ConvShape::same(1, 8, 8, 8, 3);
    let weights = Tensor4::zeros(8, 8, 3, 3);
    let engine = Engine::new(1);
    // Quantized algorithm without calibration.
    assert!(LayerBuilder::new(spec, &weights)
        .algorithm(AlgoChoice::Fixed(Algorithm::DirectInt8))
        .build(&engine)
        .is_err());
    // Wrong weight shape.
    assert!(LayerBuilder::new(spec, &Tensor4::zeros(8, 4, 3, 3))
        .algorithm(AlgoChoice::Fixed(Algorithm::DirectF32))
        .build(&engine)
        .is_err());
    // Up-casting F(6,3) impossible.
    assert!(LayerBuilder::new(spec, &weights)
        .algorithm(AlgoChoice::Fixed(Algorithm::UpCast { m: 6 }))
        .input_scale(QParams::UNIT)
        .build(&engine)
        .is_err());
}
