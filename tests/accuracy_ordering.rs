//! Integration: the accuracy *orderings* that constitute the paper's
//! Table 3 / Fig. 9 claims, asserted at the layer level and end-to-end.

use lowino::prelude::*;
use lowino_conv::algo::direct_f32::reference_conv_nchw;
use lowino_conv::calibrate::calibrate_winograd_domain_per_position;
use lowino_nn::{
    evaluate_top1, mini_vgg, train, Dataset, QuantizedModel, QuantizedSpec, SyntheticSpec,
    TrainConfig,
};

fn layer_error(spec: ConvShape, algo: Algorithm, per_position: bool) -> f64 {
    let input = Tensor4::from_fn(spec.batch, spec.in_c, spec.h, spec.w, |b, c, y, x| {
        ((b * 53 + c * 17 + y * 7 + x * 3) as f32 * 0.23).sin() * 1.2
    });
    let weights = Tensor4::from_fn(spec.out_c, spec.in_c, spec.r, spec.r, |k, c, y, x| {
        ((k * 11 + c * 5 + y * 2 + x) as f32 * 0.47).cos() * 0.2
    });
    let want = reference_conv_nchw(&spec, &input, &weights);
    let img = BlockedImage::from_nchw(&input);
    let engine = Engine::new(1);
    let mut layer = LayerBuilder::new(spec, &weights)
        .algorithm(AlgoChoice::Fixed(algo))
        .calibration_samples(vec![img.clone()])
        .per_position_scales(per_position)
        .build(&engine)
        .unwrap_or_else(|e| panic!("{algo}: {e}"));
    let mut engine = engine;
    let mut out = engine.alloc_output(&spec);
    engine.execute(&mut layer, &img, &mut out).unwrap();
    out.to_nchw().rel_l2_error(&want)
}

/// The central Table 3 mechanism, at the layer level: down-scaling is fine
/// at F(2,3), collapses at F(4,3); LoWino stays healthy at both.
///
/// Per-tensor F(4,3) quantization noise is data-dependent at toy channel
/// counts, so the F(4,3) LoWino side is asserted with per-position scales
/// (which track the paper's behaviour at C >= 128) and the per-tensor side
/// is only required not to be *worse* than down-scaling.
#[test]
fn downscale_collapses_at_f4_lowino_does_not() {
    let spec = ConvShape::same(1, 32, 32, 12, 3).validate().unwrap();
    let ds2 = layer_error(spec, Algorithm::DownScale { m: 2 }, false);
    let ds4 = layer_error(spec, Algorithm::DownScale { m: 4 }, false);
    let lw2 = layer_error(spec, Algorithm::LoWino { m: 2 }, false);
    let lw4 = layer_error(spec, Algorithm::LoWino { m: 4 }, false);
    let lw4_pp = layer_error(spec, Algorithm::LoWino { m: 4 }, true);
    // LoWino at least as good as down-scaling at each tile size.
    assert!(lw2 <= ds2 * 1.2, "lw2={lw2} ds2={ds2}");
    assert!(lw4 <= ds4 * 1.2, "lw4={lw4} ds4={ds4}");
    assert!(lw4_pp < ds4 / 3.0, "lw4_pp={lw4_pp} ds4={ds4}");
    // The collapse: down-scaling degrades sharply from m=2 to m=4; LoWino
    // (per-position) stays flat.
    assert!(ds4 > 4.0 * ds2, "ds2={ds2} ds4={ds4}");
    assert!(lw4_pp < 4.0 * lw2.max(0.02), "lw2={lw2} lw4_pp={lw4_pp}");
    assert!(lw4_pp < 0.12, "lw4_pp={lw4_pp}");
}

/// Scale-granularity ablation: per-position never much worse, and decisive
/// for F(6,3).
#[test]
fn per_position_granularity_ordering() {
    let spec = ConvShape::same(1, 16, 16, 12, 3).validate().unwrap();
    let pt6 = layer_error(spec, Algorithm::LoWino { m: 6 }, false);
    let pp6 = layer_error(spec, Algorithm::LoWino { m: 6 }, true);
    assert!(pp6 < pt6 / 3.0, "pp6={pp6} pt6={pt6}");
    assert!(pp6 < 0.2, "pp6={pp6}");

    let pt4 = layer_error(spec, Algorithm::LoWino { m: 4 }, false);
    let pp4 = layer_error(spec, Algorithm::LoWino { m: 4 }, true);
    assert!(pp4 <= pt4 * 1.2, "pp4={pp4} pt4={pt4}");
}

/// Winograd-domain calibration is what saves LoWino: quantizing the
/// transformed values with a *spatial-domain* threshold (what the naive
/// combination would do) must be far worse.
#[test]
fn winograd_domain_calibration_matters() {
    let spec = ConvShape::same(1, 16, 16, 10, 3).validate().unwrap();
    let input = Tensor4::from_fn(1, 16, 10, 10, |_, c, y, x| {
        ((c * 19 + y * 3 + x) as f32 * 0.31).sin()
    });
    let weights = Tensor4::from_fn(16, 16, 3, 3, |k, c, y, x| {
        ((k * 3 + c * 7 + y + x) as f32 * 0.53).cos() * 0.25
    });
    let want = reference_conv_nchw(&spec, &input, &weights);
    let img = BlockedImage::from_nchw(&input);
    let mut engine = Engine::new(1);

    let run_with_scale = |engine: &mut Engine, scale: QParams| -> f64 {
        let mut layer = LayerBuilder::new(spec, &weights)
            .algorithm(AlgoChoice::Fixed(Algorithm::LoWino { m: 2 }))
            .input_scale(scale)
            .build(engine)
            .unwrap();
        let mut out = engine.alloc_output(&spec);
        engine.execute(&mut layer, &img, &mut out).unwrap();
        out.to_nchw().rel_l2_error(&want)
    };

    let wd = lowino::calibrate_winograd_domain(&spec, 2, std::slice::from_ref(&img)).unwrap();
    let spatial = lowino::calibrate_spatial(std::slice::from_ref(&img)).unwrap();
    let err_wd = run_with_scale(&mut engine, wd);
    let err_spatial_scale = run_with_scale(&mut engine, spatial);
    // The spatial threshold is ~4x too small for the F(2,3)-transformed
    // values: everything saturates.
    assert!(
        err_spatial_scale > 3.0 * err_wd,
        "wd={err_wd} spatial={err_spatial_scale}"
    );
    assert!(err_wd < 0.05, "wd={err_wd}");
}

/// Per-position calibration returns exactly T thresholds that differ
/// across positions for m >= 4 (the disparity the granularity fixes).
#[test]
fn per_position_calibration_shape() {
    let spec = ConvShape::same(1, 8, 8, 10, 3).validate().unwrap();
    let img = BlockedImage::from_nchw(&Tensor4::from_fn(1, 8, 10, 10, |_, c, y, x| {
        ((c + y + x) as f32 * 0.7).sin()
    }));
    let scales = calibrate_winograd_domain_per_position(&spec, 4, &[img]).unwrap();
    assert_eq!(scales.len(), 36);
    let taus: Vec<f32> = scales.iter().map(|q| q.tau()).collect();
    let max = taus.iter().cloned().fold(f32::MIN, f32::max);
    let min = taus.iter().cloned().fold(f32::MAX, f32::min);
    assert!(max / min > 2.0, "position disparity absent: {min}..{max}");
}

/// End-to-end mini-Table-3: a trained classifier keeps its accuracy under
/// LoWino F(4,3) and loses it under down-scaling F(4,3).
#[test]
fn end_to_end_accuracy_collapse() {
    // Seeds are tuned to the in-tree xoshiro256++ streams: this combination
    // trains to ~0.98 FP32 accuracy, which the orderings below need.
    let data = Dataset::generate(&SyntheticSpec {
        classes: 4,
        channels: 3,
        size: 8,
        train_per_class: 30,
        test_per_class: 12,
        noise: 0.1,
        seed: 6,
    });
    let mut model = mini_vgg(3, 20, 4, 27);
    train(
        &mut model,
        &data,
        &TrainConfig {
            epochs: 14,
            batch_size: 12,
            lr: 0.03,
            momentum: 0.9,
            seed: 2,
        },
    );
    let fp32 = evaluate_top1(&mut model, data.test_x(), data.test_y());
    assert!(fp32 > 0.7, "FP32 failed to train: {fp32}");

    let calib = data.gather_batch(&(0..24).collect::<Vec<_>>()).0;
    let mut acc = |algo: Algorithm, per_position: bool| -> f64 {
        QuantizedModel::from_model(
            &mut model,
            &calib,
            &QuantizedSpec {
                algorithm: algo,
                per_position,
                batch: 12,
                threads: 1,
            },
        )
        .unwrap()
        .evaluate_top1(data.test_x(), data.test_y())
    };
    let lw2 = acc(Algorithm::LoWino { m: 2 }, false);
    let lw4_pp = acc(Algorithm::LoWino { m: 4 }, true);
    let ds4 = acc(Algorithm::DownScale { m: 4 }, false);
    // F(2,3) LoWino preserves accuracy; down-scaling F(4,3) loses a large
    // chunk of it (the collapse scales with depth — total on the paper's
    // 13-conv VGG16, partial on this 4-conv toy). At these tiny channel
    // counts the healthy F(4,3) LoWino needs per-position scales; the
    // table3_accuracy harness reports both granularities at real widths.
    assert!(lw2 >= fp32 - 0.1, "LoWino F2 {lw2} vs FP32 {fp32}");
    assert!(ds4 <= fp32 - 0.2, "down-scaling F4 should collapse: {ds4} vs {fp32}");
    assert!(lw4_pp >= fp32 - 0.2, "lw4_pp={lw4_pp} fp32={fp32}");
    assert!(lw4_pp > ds4, "lw4_pp={lw4_pp} ds4={ds4}");
}
